// Package sim provides seeded workload generation, deterministic
// execution drivers, and metrics collection for the experiments in
// EXPERIMENTS.md. The 1981 paper reports no measured evaluation; this
// package is the substitution documented in DESIGN.md §2, quantifying
// the paper's qualitative claims (partial rollback loses less progress
// than total restart; §5's write clustering and three-phase structure
// improve the single-copy strategy).
package sim

import (
	"fmt"
	"math/rand"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Workload is a reproducible experiment input: a fresh-store factory
// plus the transaction programs to run. Store is a factory so different
// strategies can be compared from identical initial states.
type Workload struct {
	Name     string
	NewStore func() *entity.Store
	Programs []*txn.Program
}

// WriteShape controls where a generated transaction places its writes
// relative to its lock requests (§5's structural dimension).
type WriteShape int

// Write shapes.
const (
	// Scattered interleaves writes to earlier-locked entities between
	// later lock requests — the worst case for the single-copy
	// strategy (Figure 4's T1).
	Scattered WriteShape = iota
	// Clustered performs all writes to an entity immediately after
	// locking it (Figure 5's T2).
	Clustered
	// ThreePhase defers every write until after a DeclareLastLock
	// marker: acquisition phase, update phase, release phase (§5).
	ThreePhase
	// Mixed alternates Scattered and Clustered per transaction,
	// modeling a system with both well- and badly-structured programs.
	Mixed
)

func (w WriteShape) String() string {
	switch w {
	case Scattered:
		return "scattered"
	case Clustered:
		return "clustered"
	case ThreePhase:
		return "three-phase"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("WriteShape(%d)", int(w))
	}
}

// GenConfig parameterizes random workload generation. All randomness
// derives from Seed; equal configs generate equal workloads.
type GenConfig struct {
	// Txns is the number of transactions.
	Txns int
	// DBSize is the number of entities ("e0".."eN-1").
	DBSize int
	// InitValue is every entity's initial value.
	InitValue int64
	// HotSet and HotProb skew access: each lock targets one of the
	// first HotSet entities with probability HotProb. HotSet 0 disables
	// skew.
	HotSet  int
	HotProb float64
	// LocksPerTxn is the number of (distinct) entities each transaction
	// locks.
	LocksPerTxn int
	// SharedProb is the probability a lock is shared rather than
	// exclusive.
	SharedProb float64
	// RewriteProb is the probability, per later lock interval, that an
	// already-X-locked entity is written again (Scattered shape only);
	// it controls how badly writes scatter.
	RewriteProb float64
	// PadOps inserts this many Compute operations into each lock
	// interval, padding state indices so rollback costs differ.
	PadOps int
	// Shape places writes per §5.
	Shape WriteShape
	// Seed drives all generation randomness.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Txns == 0 {
		c.Txns = 8
	}
	if c.DBSize == 0 {
		c.DBSize = 32
	}
	if c.LocksPerTxn == 0 {
		c.LocksPerTxn = 4
	}
	if c.PadOps == 0 {
		c.PadOps = 2
	}
	return c
}

// Generate builds a reproducible random workload.
func Generate(cfg GenConfig) Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	programs := make([]*txn.Program, 0, cfg.Txns)
	for i := 0; i < cfg.Txns; i++ {
		pcfg := cfg
		if cfg.Shape == Mixed {
			if i%2 == 0 {
				pcfg.Shape = Scattered
			} else {
				pcfg.Shape = Clustered
			}
		}
		programs = append(programs, genProgram(fmt.Sprintf("G%d", i), pcfg, rng))
	}
	init := cfg.InitValue
	size := cfg.DBSize
	return Workload{
		Name:     fmt.Sprintf("gen(txns=%d,db=%d,locks=%d,shape=%s,seed=%d)", cfg.Txns, cfg.DBSize, cfg.LocksPerTxn, cfg.Shape, cfg.Seed),
		NewStore: func() *entity.Store { return entity.NewUniformStore("e", size, init) },
		Programs: programs,
	}
}

// pickEntities chooses n distinct entities under the hot-set skew.
func pickEntities(cfg GenConfig, rng *rand.Rand) []string {
	chosen := map[int]bool{}
	out := make([]string, 0, cfg.LocksPerTxn)
	for len(out) < cfg.LocksPerTxn && len(out) < cfg.DBSize {
		var idx int
		if cfg.HotSet > 0 && rng.Float64() < cfg.HotProb {
			idx = rng.Intn(cfg.HotSet)
		} else {
			idx = rng.Intn(cfg.DBSize)
		}
		if chosen[idx] {
			continue
		}
		chosen[idx] = true
		out = append(out, fmt.Sprintf("e%d", idx))
	}
	return out
}

// genProgram builds one transaction. Local-variable placement follows
// the same §5 discipline as entity writes: the single-copy strategy
// tracks locals too, so a cross-interval accumulator would destroy
// every lock state regardless of where entity writes sit. Scattered
// programs therefore thread an accumulator through every interval
// (worst case); clustered and three-phase programs confine each local
// to one interval.
func genProgram(name string, cfg GenConfig, rng *rand.Rand) *txn.Program {
	entities := pickEntities(cfg, rng)
	b := txn.NewProgram(name)
	locals := make([]string, len(entities))
	scratch := make([]string, len(entities))
	exclusive := make([]bool, len(entities))
	for k := range entities {
		locals[k] = fmt.Sprintf("v%d", k)
		scratch[k] = fmt.Sprintf("s%d", k)
		b.Local(locals[k], 0)
		b.Local(scratch[k], 0)
		exclusive[k] = rng.Float64() >= cfg.SharedProb
	}
	if cfg.Shape == Scattered {
		b.Local("acc", 0)
	}

	// pad emits PadOps computes confined to interval k's scratch local.
	pad := func(k int) {
		for p := 0; p < cfg.PadOps; p++ {
			b.Compute(scratch[k], value.Add(value.L(scratch[k]), value.C(1)))
		}
	}

	writeOp := func(k int) {
		// A deterministic, rollback-sensitive update: e_k's new value
		// depends on the value read from it and on local computation.
		b.Write(entities[k], value.Add(value.L(locals[k]),
			value.Add(value.Mod(value.L(scratch[k]), value.C(7)), value.C(1))))
	}

	for k, e := range entities {
		if exclusive[k] {
			b.LockX(e)
		} else {
			b.LockS(e)
		}
		b.Read(e, locals[k])
		pad(k)
		switch cfg.Shape {
		case Clustered:
			if exclusive[k] {
				writeOp(k)
				writeOp(k) // second write in the same interval: still clustered
			}
		case Scattered:
			// The accumulator threads through every interval — the §5
			// anti-pattern.
			b.Compute("acc", value.Add(value.L("acc"), value.L(locals[k])))
			if exclusive[k] {
				writeOp(k)
			}
			// Rewrite earlier entities, scattering their intervals.
			for j := 0; j < k; j++ {
				if exclusive[j] && rng.Float64() < cfg.RewriteProb {
					writeOp(j)
				}
			}
		}
	}
	if cfg.Shape == ThreePhase {
		b.DeclareLastLock()
		for k := range entities {
			if exclusive[k] {
				writeOp(k)
			}
		}
	}
	return b.MustBuild()
}

// TransferProgram builds the canonical bank transfer: move amount from
// one account entity to another, exclusively locking both.
func TransferProgram(name, from, to string, amount int64, padOps int) *txn.Program {
	b := txn.NewProgram(name).
		Local("x", 0).Local("y", 0).Local("pad", 0).
		LockX(from).
		Read(from, "x")
	for i := 0; i < padOps; i++ {
		b.Compute("pad", value.Add(value.L("pad"), value.C(1)))
	}
	return b.
		LockX(to).
		Read(to, "y").
		Write(from, value.Sub(value.L("x"), value.C(amount))).
		Write(to, value.Add(value.L("y"), value.C(amount))).
		MustBuild()
}

// BankingWorkload generates transfers over accounts with a uniform
// random (seeded) choice of endpoints; the sum of all accounts is an
// invariant checked by the store.
func BankingWorkload(accounts, transfers int, initBalance int64, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	programs := make([]*txn.Program, 0, transfers)
	for i := 0; i < transfers; i++ {
		from := rng.Intn(accounts)
		to := rng.Intn(accounts - 1)
		if to >= from {
			to++
		}
		programs = append(programs, TransferProgram(
			fmt.Sprintf("xfer%d", i),
			fmt.Sprintf("acct%d", from),
			fmt.Sprintf("acct%d", to),
			int64(1+rng.Intn(10)),
			rng.Intn(4),
		))
	}
	return Workload{
		Name: fmt.Sprintf("banking(accounts=%d,transfers=%d,seed=%d)", accounts, transfers, seed),
		NewStore: func() *entity.Store {
			s := entity.NewUniformStore("acct", accounts, initBalance)
			names := make([]string, accounts)
			for i := range names {
				names[i] = fmt.Sprintf("acct%d", i)
			}
			s.AddConstraint(entity.SumConstraint("balance-sum", int64(accounts)*initBalance, names...))
			return s
		},
		Programs: programs,
	}
}

// CounterProgram builds the simplest write transaction: lock one
// entity exclusively and increment it. Its single-record write-set
// makes it the unit of account for the crash-recovery harness — every
// acknowledged commit adds exactly one to the sum of all counters, so
// a recovered store proves durability by arithmetic.
func CounterProgram(name, ent string) *txn.Program {
	return txn.NewProgram(name).
		Local("v", 0).
		LockX(ent).
		Read(ent, "v").
		Write(ent, value.Add(value.L("v"), value.C(1))).
		MustBuild()
}

// CounterWorkload generates increments spread uniformly (seeded) over
// counters entities "e0".."eN-1".
func CounterWorkload(counters, txns int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	programs := make([]*txn.Program, 0, txns)
	for i := 0; i < txns; i++ {
		programs = append(programs, CounterProgram(
			fmt.Sprintf("inc%d", i),
			fmt.Sprintf("e%d", rng.Intn(counters)),
		))
	}
	return Workload{
		Name:     fmt.Sprintf("counter(counters=%d,txns=%d,seed=%d)", counters, txns, seed),
		NewStore: func() *entity.Store { return entity.NewUniformStore("e", counters, 0) },
		Programs: programs,
	}
}
