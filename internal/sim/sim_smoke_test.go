package sim

import (
	"testing"

	"partialrollback/internal/core"
)

func TestSmokeGeneratedWorkloadAllStrategies(t *testing.T) {
	w := Generate(GenConfig{
		Txns: 10, DBSize: 8, HotSet: 4, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.5, Shape: Scattered, Seed: 42,
	})
	results, err := CompareStrategies(w, RunConfig{
		Scheduler: RoundRobin, RecordHistory: true, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for st, r := range results {
		if r.Committed != 10 {
			t.Errorf("%v: committed %d, want 10", st, r.Committed)
		}
		if _, err := r.System.Recorder().CheckSerializable(); err != nil {
			t.Errorf("%v: %v", st, err)
		}
		t.Logf("%v", r)
	}
	if results[core.Total].Stats.Deadlocks == 0 {
		t.Error("expected deadlocks in hot-set workload")
	}
}
