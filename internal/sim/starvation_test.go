package sim

import (
	"strings"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
)

// seed107 reconstructs the workload on which the randomized soak test
// found a stable preemption ring: minimal cycle-breaking repeatedly
// freed only one of an old waiter's two shared blockers, the ring
// re-formed, and the system livelocked.
func seed107() Workload {
	return Generate(GenConfig{
		Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 5, SharedProb: 0.3, RewriteProb: 0.6,
		PadOps: 1, Shape: Mixed, Seed: 107,
	})
}

// TestStarvationEscalationBreaksRing is the regression test for the
// livelock: with escalation disabled the run must exceed its step
// budget; with the default limit it terminates, and the escalation
// counter shows the mechanism fired.
func TestStarvationEscalationBreaksRing(t *testing.T) {
	base := RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: RandomPick, Seed: 107 * 7,
		MaxSteps: 300_000,
	}

	disabled := base
	disabled.StarvationLimit = -1
	if _, err := Run(seed107(), disabled); err == nil {
		t.Fatal("without escalation the ring should livelock past the step budget")
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("unexpected failure mode: %v", err)
	}

	r, err := Run(seed107(), base)
	if err != nil {
		t.Fatalf("with escalation: %v", err)
	}
	if r.Committed != 10 {
		t.Fatalf("commits = %d", r.Committed)
	}
	if r.Stats.Escalations == 0 {
		t.Error("escalation counter should have fired on this workload")
	}
}

// TestEscalationPreservesCorrectness: escalated runs still satisfy the
// serializability and serial-state oracles.
func TestEscalationPreservesCorrectness(t *testing.T) {
	r, err := Run(seed107(), RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: RandomPick, Seed: 107 * 7,
		RecordHistory: true, MaxSteps: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	order, err := r.System.Recorder().SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := runSerialOrder(t, seed107(), order)
	snap := r.Store.Snapshot()
	for e, wv := range want {
		if snap[e] != wv {
			t.Errorf("entity %q = %d, oracle %d", e, snap[e], wv)
		}
	}
}
