// Package render produces the ASCII depictions of concurrency graphs
// and state-dependency graphs used by cmd/prfigures, in the paper's
// holder -> waiter arc orientation.
package render

import (
	"fmt"
	"sort"
	"strings"

	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// ConcurrencyGraph renders wait-for arcs as the paper draws them: an
// arc labeled with the contested entity from the holding transaction to
// the waiting one, plus a cycle summary.
func ConcurrencyGraph(title string, arcs []waitfor.Arc, names func(txn.ID) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(arcs) == 0 {
		b.WriteString("  (no waits)\n")
		return b.String()
	}
	sorted := append([]waitfor.Arc(nil), arcs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, c := sorted[i], sorted[j]
		if a.Holder != c.Holder {
			return a.Holder < c.Holder
		}
		if a.Waiter != c.Waiter {
			return a.Waiter < c.Waiter
		}
		return a.Entity < c.Entity
	})
	name := func(id txn.ID) string {
		if names != nil {
			if n := names(id); n != "" {
				return n
			}
		}
		return id.String()
	}
	for _, a := range sorted {
		fmt.Fprintf(&b, "  %s --%s--> %s   (%s waits to lock %s, held by %s)\n",
			name(a.Holder), a.Entity, name(a.Waiter), name(a.Waiter), a.Entity, name(a.Holder))
	}
	return b.String()
}

// StateDependencyGraph renders lock states 0..n as a chain with write
// interval edges drawn beneath, and marks the well-defined states.
func StateDependencyGraph(title string, n int, intervals [][2]int, wellDefined []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  states: ", title)
	wd := map[int]bool{}
	for _, q := range wellDefined {
		wd[q] = true
	}
	for q := 0; q <= n; q++ {
		if q > 0 {
			b.WriteString("--")
		}
		if wd[q] {
			fmt.Fprintf(&b, "[%d]", q)
		} else {
			fmt.Fprintf(&b, " %d ", q)
		}
	}
	b.WriteString("   ([q] = well-defined)\n")
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i][0] != intervals[j][0] {
			return intervals[i][0] < intervals[j][0]
		}
		return intervals[i][1] < intervals[j][1]
	})
	for _, iv := range intervals {
		fmt.Fprintf(&b, "  write edge {%d,%d}: destroys states %d..%d\n",
			iv[0]-1, iv[1], iv[0], iv[1]-1)
	}
	if len(intervals) == 0 {
		b.WriteString("  (no write intervals: every lock state is well-defined)\n")
	}
	return b.String()
}

// Table renders rows with aligned columns; header then rows.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
