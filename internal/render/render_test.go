package render

import (
	"strings"
	"testing"

	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

func TestConcurrencyGraphOrientation(t *testing.T) {
	arcs := []waitfor.Arc{
		{Waiter: 3, Holder: 2, Entity: "b"},
		{Waiter: 2, Holder: 4, Entity: "e"},
	}
	out := ConcurrencyGraph("G", arcs, nil)
	// Paper orientation: holder --entity--> waiter.
	if !strings.Contains(out, "T2 --b--> T3") {
		t.Errorf("missing holder->waiter arc:\n%s", out)
	}
	if !strings.Contains(out, "T4 --e--> T2") {
		t.Errorf("missing second arc:\n%s", out)
	}
	named := ConcurrencyGraph("G", arcs, func(id txn.ID) string {
		if id == 3 {
			return "reader"
		}
		return ""
	})
	if !strings.Contains(named, "reader") {
		t.Error("names function ignored")
	}
	empty := ConcurrencyGraph("G", nil, nil)
	if !strings.Contains(empty, "no waits") {
		t.Error("empty graph text")
	}
}

func TestStateDependencyGraph(t *testing.T) {
	out := StateDependencyGraph("SDG", 4, [][2]int{{1, 3}}, []int{0, 3, 4})
	if !strings.Contains(out, "[0]") || !strings.Contains(out, "[3]") || !strings.Contains(out, "[4]") {
		t.Errorf("well-defined markers missing:\n%s", out)
	}
	if strings.Contains(out, "[1]") || strings.Contains(out, "[2]") {
		t.Errorf("destroyed states marked well-defined:\n%s", out)
	}
	if !strings.Contains(out, "destroys states 1..2") {
		t.Errorf("interval description missing:\n%s", out)
	}
	clean := StateDependencyGraph("SDG", 2, nil, []int{0, 1, 2})
	if !strings.Contains(clean, "every lock state is well-defined") {
		t.Error("no-interval text")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"col", "count"}, [][]string{{"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	width := len(lines[0])
	for i, l := range lines {
		if len(l) > width+2 {
			t.Errorf("ragged line %d: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("separator missing")
	}
}
