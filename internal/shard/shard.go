// Package shard composes N independent core.System instances into one
// core.Engine — the paper's §3.3 per-site architecture applied to a
// single process. Each shard keeps its own lock table, concurrency
// graph and deadlock detection under its own mutex, so lock traffic on
// disjoint entity sets runs in parallel instead of serializing on one
// big engine lock.
//
// Entities are partitioned by hash, but the partition is conflict
// driven rather than static: a routing directory pins every entity of a
// running transaction's lock set to that transaction's shard for as
// long as the transaction is active. A new transaction whose lock set
// touches pinned entities is co-located with them; one whose entities
// are currently pinned to two or more different shards cannot be placed
// yet and queues in registration order (§3.3's timestamp rule applied
// at the shard boundary: older claims are admitted first, and a queued
// claim fences later claims that share an entity with it). Because any
// two transactions that can ever conflict are therefore on the same
// shard at the same time, every wait — and so every deadlock — is
// shard-local, single-shard detection is complete, and partial rollback
// applies within the shard exactly as in the unsharded engine.
//
// Queued claims hold no pins, so placement can never deadlock: pins
// only drain (on commit and abort), and the queue head is always
// admissible once its entities' pins are released. Events from all
// shards are remapped to global transaction IDs and merged into one
// ordered stream, and per-shard history recorders share one logical
// clock (history.Clock), so the serializability oracle and the trace
// tooling observe the sharded engine exactly as they would a single
// System.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/history"
	"partialrollback/internal/txn"
)

// claimState tracks a transaction's routing lifecycle.
type claimState int

const (
	// statePending: registered, but its lock set could not be placed on
	// one shard yet; queued for admission.
	statePending claimState = iota
	// statePlaced: registered on its shard.
	statePlaced
)

// binding locates a transaction inside a shard.
type binding struct {
	shard int
	local txn.ID
}

// tmeta is the engine's routing metadata for one transaction.
type tmeta struct {
	prog    *txn.Program
	lockSet []string
	state   claimState
	shard   int
	local   txn.ID
	// pinned reports whether the transaction's lock set currently holds
	// pins (placed and not yet committed/aborted).
	pinned bool
}

// pin records which shard an entity is pinned to and by how many active
// transactions.
type pin struct {
	shard int
	refs  int
}

// admission is a queued claim whose placement has been decided (pins
// taken) but whose shard registration is still to be performed.
type admission struct {
	gid   txn.ID
	shard int
	prog  *txn.Program
}

// Engine is a sharded core.Engine over N core.System instances sharing
// one entity store. All methods are safe for concurrent use.
//
// Lock ordering (outer to inner): regMu → mu; any shard's internal
// mutex (entered by calling into a core.System) → mapMu → emitMu.
// regMu/mu are never held across a call into a shard, and mapMu is
// never held across one either, because shard event callbacks take
// mapMu/emitMu while the shard mutex is held.
type Engine struct {
	n      int
	cfg    core.Config
	store  *entity.Store
	shards []*core.System
	clock  *history.Clock

	onEvent func(core.Event)

	// regMu serializes placement and admission so transactions reach
	// their shards in registration order.
	regMu sync.Mutex

	// mu guards the routing directory.
	mu            sync.Mutex
	pins          map[string]*pin
	queue         []txn.ID // pending global IDs, registration order
	nextID        txn.ID
	meta          map[txn.ID]*tmeta
	pendingAborts int64

	// mapMu guards the global↔local ID maps.
	mapMu sync.RWMutex
	g2l   map[txn.ID]binding
	l2g   []map[txn.ID]txn.ID

	// emitMu serializes the merged event stream.
	emitMu sync.Mutex
}

var _ core.Engine = (*Engine)(nil)

// New creates an Engine with n shards configured from cfg. cfg.OnEvent
// receives the merged, globally-ID'd event stream; cfg.HistoryClock is
// ignored (the engine installs its own shared clock). It panics if
// n < 1 or cfg.Store is nil (programming errors).
func New(n int, cfg core.Config) *Engine {
	if n < 1 {
		panic("shard: need at least one shard")
	}
	if cfg.Store == nil {
		panic("shard: Config.Store is required")
	}
	e := &Engine{
		n:       n,
		cfg:     cfg,
		store:   cfg.Store,
		shards:  make([]*core.System, n),
		onEvent: cfg.OnEvent,
		pins:    map[string]*pin{},
		meta:    map[txn.ID]*tmeta{},
		g2l:     map[txn.ID]binding{},
		l2g:     make([]map[txn.ID]txn.ID, n),
	}
	if cfg.RecordHistory {
		e.clock = &history.Clock{}
	}
	for k := 0; k < n; k++ {
		e.l2g[k] = map[txn.ID]txn.ID{}
		sub := cfg
		sub.HistoryClock = e.clock
		if scl, ok := cfg.CommitLog.(core.ShardedCommitLogger); ok {
			// Each shard appends to its own log with its own group-commit
			// queue; a plain CommitLogger is shared by all shards instead
			// (correct, just serialized on one append queue).
			sub.CommitLog = scl.ForShard(k)
		}
		if e.onEvent != nil {
			sub.OnEvent = e.shardEventSink(k)
		} else {
			sub.OnEvent = nil
		}
		e.shards[k] = core.New(sub)
	}
	return e
}

// Shards returns the number of shards.
func (e *Engine) Shards() int { return e.n }

// Stripes returns the per-shard lock-table stripe count (1 = classic
// single-lock shard engines).
func (e *Engine) Stripes() int { return e.shards[0].Stripes() }

// StripeAcquires returns per-stripe lock-acquire counts summed across
// shards (every shard has the same stripe count); nil when the shards
// run the classic single-lock engine.
func (e *Engine) StripeAcquires() []int64 {
	var out []int64
	for _, s := range e.shards {
		sa := s.StripeAcquires()
		if sa == nil {
			return nil
		}
		if out == nil {
			out = make([]int64, len(sa))
		}
		for i, v := range sa {
			out[i] += v
		}
	}
	return out
}

// shardEventSink remaps shard k's events to global transaction IDs and
// forwards them to the merged stream. The shard's own EventRegister is
// dropped: it fires before the local→global mapping exists, so the
// engine emits its own registration event once the binding is recorded.
func (e *Engine) shardEventSink(k int) func(core.Event) {
	return func(ev core.Event) {
		if ev.Kind == core.EventRegister {
			return
		}
		e.mapMu.RLock()
		m := e.l2g[k]
		ev.Txn = mapID(m, ev.Txn)
		if ev.Deadlock != nil {
			ev.Deadlock = remapReport(m, ev.Deadlock)
		}
		e.mapMu.RUnlock()
		e.emit(ev)
	}
}

func (e *Engine) emit(ev core.Event) {
	if e.onEvent == nil {
		return
	}
	e.emitMu.Lock()
	e.onEvent(ev)
	e.emitMu.Unlock()
}

func mapID(m map[txn.ID]txn.ID, id txn.ID) txn.ID {
	if g, ok := m[id]; ok {
		return g
	}
	return id
}

// remapReport rewrites a deadlock report's transaction IDs into a copy;
// the original is shared with the emitting shard and must not be
// mutated.
func remapReport(m map[txn.ID]txn.ID, r *core.DeadlockReport) *core.DeadlockReport {
	out := &core.DeadlockReport{
		Requester: mapID(m, r.Requester),
		Entity:    r.Entity,
		Cycles:    make([][]txn.ID, len(r.Cycles)),
		Victims:   append(r.Victims[:0:0], r.Victims...),
	}
	for i, c := range r.Cycles {
		cc := make([]txn.ID, len(c))
		for j, id := range c {
			cc[j] = mapID(m, id)
		}
		out.Cycles[i] = cc
	}
	if r.Candidates != nil {
		out.Candidates = make(map[txn.ID]deadlock.Victim, len(r.Candidates))
		for id, v := range r.Candidates {
			v.Txn = mapID(m, v.Txn)
			out.Candidates[mapID(m, id)] = v
		}
	}
	for i := range out.Victims {
		out.Victims[i].Txn = mapID(m, out.Victims[i].Txn)
	}
	return out
}

// Register validates prog, allocates a global ID, and either places the
// transaction on a shard immediately or queues it behind conflicting
// older registrations (see the package comment). Queued transactions
// report StatusWaiting and become runnable when an EventAdmit is
// emitted for them.
func (e *Engine) Register(prog *txn.Program) (txn.ID, error) {
	a, err := txn.ValidateAnalyze(prog)
	if err != nil {
		return txn.None, err
	}
	lockSet := a.LockSet()
	for _, ent := range lockSet {
		if !e.store.Exists(ent) {
			return txn.None, fmt.Errorf("core: program %s locks undefined entity %q", prog.Name, ent)
		}
	}

	e.regMu.Lock()
	defer e.regMu.Unlock()

	e.mu.Lock()
	e.nextID++
	gid := e.nextID
	m := &tmeta{prog: prog, lockSet: lockSet, state: statePending}
	e.meta[gid] = m
	target, placeable := -1, false
	if !e.fencedLocked(lockSet, e.queue) {
		target, placeable = e.pinTargetLocked(lockSet)
	}
	if placeable {
		e.pinLocked(lockSet, target)
		m.pinned = true
		m.shard = target
	} else {
		e.queue = append(e.queue, gid)
	}
	e.mu.Unlock()

	if placeable {
		lid, err := e.shards[target].Register(prog)
		if err != nil {
			// Cannot happen in practice: the program was validated and
			// its lock set existence-checked above, which is everything
			// System.Register verifies. Undo the routing state anyway.
			e.mu.Lock()
			e.unpinLocked(lockSet)
			delete(e.meta, gid)
			admitted := e.admitLocked()
			e.mu.Unlock()
			e.place(admitted)
			return txn.None, err
		}
		e.bind(gid, target, lid)
	}
	e.emit(core.Event{Kind: core.EventRegister, Txn: gid, Detail: prog.Name})
	return gid, nil
}

// MustRegister is Register that panics on error (fixtures and tests).
func (e *Engine) MustRegister(prog *txn.Program) txn.ID {
	id, err := e.Register(prog)
	if err != nil {
		panic(err)
	}
	return id
}

// fencedLocked reports whether lockSet shares an entity with any claim
// queued ahead of it (admission stays in registration order).
func (e *Engine) fencedLocked(lockSet []string, ahead []txn.ID) bool {
	for _, qid := range ahead {
		if shareEntity(e.meta[qid].lockSet, lockSet) {
			return true
		}
	}
	return false
}

// pinTargetLocked returns the shard lockSet can be placed on: the one
// shard its pinned entities live on, or the hash vote when none are
// pinned. It fails when pins span two or more shards.
func (e *Engine) pinTargetLocked(lockSet []string) (int, bool) {
	target := -1
	for _, ent := range lockSet {
		if p, ok := e.pins[ent]; ok {
			if target == -1 {
				target = p.shard
			} else if target != p.shard {
				return -1, false
			}
		}
	}
	if target == -1 {
		target = e.hashVote(lockSet)
	}
	return target, true
}

// hashVote picks the default shard for an unpinned lock set: each
// entity votes for its FNV-32a hash modulo n; most votes wins, ties go
// to the lowest index. Single-entity transactions land exactly on their
// entity's hash shard, keeping the partition stable under uniform load.
func (e *Engine) hashVote(lockSet []string) int {
	if e.n == 1 || len(lockSet) == 0 {
		return 0
	}
	votes := make([]int, e.n)
	for _, ent := range lockSet {
		h := fnv.New32a()
		h.Write([]byte(ent))
		votes[int(h.Sum32())%e.n]++
	}
	best := 0
	for k := 1; k < e.n; k++ {
		if votes[k] > votes[best] {
			best = k
		}
	}
	return best
}

func shareEntity(a, b []string) bool {
	// Both slices are sorted (txn.Analysis.LockSet).
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func (e *Engine) pinLocked(lockSet []string, shard int) {
	for _, ent := range lockSet {
		if p, ok := e.pins[ent]; ok {
			p.refs++
		} else {
			e.pins[ent] = &pin{shard: shard, refs: 1}
		}
	}
}

func (e *Engine) unpinLocked(lockSet []string) {
	for _, ent := range lockSet {
		if p, ok := e.pins[ent]; ok {
			p.refs--
			if p.refs == 0 {
				delete(e.pins, ent)
			}
		}
	}
}

// bind records the global↔local mapping after a shard registration.
func (e *Engine) bind(gid txn.ID, shard int, lid txn.ID) {
	e.mapMu.Lock()
	e.g2l[gid] = binding{shard: shard, local: lid}
	e.l2g[shard][lid] = gid
	e.mapMu.Unlock()
	e.mu.Lock()
	m := e.meta[gid]
	m.shard, m.local, m.state = shard, lid, statePlaced
	e.mu.Unlock()
}

// unbind drops a transaction's maps after abort or forget. The
// local→global entry is kept when history is recorded: the merged
// recorder still needs it to remap committed episodes.
func (e *Engine) unbind(gid txn.ID) {
	e.mapMu.Lock()
	if b, ok := e.g2l[gid]; ok {
		delete(e.g2l, gid)
		if !e.cfg.RecordHistory {
			delete(e.l2g[b.shard], b.local)
		}
	}
	e.mapMu.Unlock()
	e.mu.Lock()
	delete(e.meta, gid)
	e.mu.Unlock()
}

func (e *Engine) bindingOf(gid txn.ID) (binding, bool) {
	e.mapMu.RLock()
	b, ok := e.g2l[gid]
	e.mapMu.RUnlock()
	return b, ok
}

// admitLocked scans the pending queue in order, taking pins for every
// claim that became placeable and returning the resulting admissions
// for the caller to register (outside mu, under regMu).
func (e *Engine) admitLocked() []admission {
	if len(e.queue) == 0 {
		return nil
	}
	var out []admission
	rest := e.queue[:0]
	for _, gid := range e.queue {
		m := e.meta[gid]
		if !e.fencedLocked(m.lockSet, rest) {
			if target, ok := e.pinTargetLocked(m.lockSet); ok {
				e.pinLocked(m.lockSet, target)
				m.pinned = true
				m.shard = target
				out = append(out, admission{gid: gid, shard: target, prog: m.prog})
				continue
			}
		}
		rest = append(rest, gid)
	}
	e.queue = rest
	return out
}

// place performs the shard registrations for admitted claims and emits
// their EventAdmit. Caller holds regMu (and not mu).
func (e *Engine) place(admitted []admission) {
	for _, a := range admitted {
		lid, err := e.shards[a.shard].Register(a.prog)
		if err != nil {
			// The claim was validated and existence-checked when it was
			// first registered, and entities are never removed from the
			// store, so a failure here means corrupted bookkeeping.
			panic(fmt.Sprintf("shard: admitting %v failed: %v", a.gid, err))
		}
		e.bind(a.gid, a.shard, lid)
		e.emit(core.Event{Kind: core.EventAdmit, Txn: a.gid, Detail: a.prog.Name})
	}
}

// release drops gid's pins (idempotently) and admits any queued claims
// that became placeable.
func (e *Engine) release(gid txn.ID) {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	e.mu.Lock()
	m := e.meta[gid]
	var admitted []admission
	if m != nil && m.pinned {
		m.pinned = false
		e.unpinLocked(m.lockSet)
		admitted = e.admitLocked()
	}
	e.mu.Unlock()
	e.place(admitted)
}

// Step executes the next atomic operation of id on its shard. A queued
// (not yet placed) transaction reports Blocked without effect. When the
// step commits the transaction, its pins are released and queued claims
// are admitted before Step returns, so a sequential driver observes the
// newly-runnable transactions immediately.
func (e *Engine) Step(id txn.ID) (core.StepResult, error) {
	b, placed := e.bindingOf(id)
	if !placed {
		e.mu.Lock()
		_, known := e.meta[id]
		e.mu.Unlock()
		if !known {
			return core.StepResult{}, fmt.Errorf("core: unknown transaction %v", id)
		}
		return core.StepResult{Outcome: core.Blocked}, nil
	}
	res, err := e.shards[b.shard].Step(b.local)
	if err != nil {
		return res, err
	}
	if res.Deadlock != nil {
		e.mapMu.RLock()
		res.Deadlock = remapReport(e.l2g[b.shard], res.Deadlock)
		e.mapMu.RUnlock()
	}
	if res.Outcome == core.Committed {
		e.release(id)
	}
	return res, nil
}

// StepBurst executes up to max consecutive atomic operations of id on
// its shard under a single shard-lock acquisition (see
// core.System.StepBurst). A transaction still queued for placement is
// the sharded engine's analogue of a shard handoff in progress: it
// reports Blocked with zero steps, exactly as Step does. A burst never
// crosses shards — a transaction is pinned to one shard for its whole
// life — so no cross-shard lock is ever held.
func (e *Engine) StepBurst(id txn.ID, max int) (core.StepResult, int, error) {
	b, placed := e.bindingOf(id)
	if !placed {
		e.mu.Lock()
		_, known := e.meta[id]
		e.mu.Unlock()
		if !known {
			return core.StepResult{}, 0, fmt.Errorf("core: unknown transaction %v", id)
		}
		return core.StepResult{Outcome: core.Blocked}, 0, nil
	}
	res, steps, err := e.shards[b.shard].StepBurst(b.local, max)
	if err != nil {
		return res, steps, err
	}
	if res.Deadlock != nil {
		e.mapMu.RLock()
		res.Deadlock = remapReport(e.l2g[b.shard], res.Deadlock)
		e.mapMu.RUnlock()
	}
	if res.Outcome == core.Committed {
		e.release(id)
	}
	return res, steps, nil
}

// Status returns id's execution status; queued transactions are
// waiting (for placement rather than for a lock).
func (e *Engine) Status(id txn.ID) (core.Status, error) {
	if b, ok := e.bindingOf(id); ok {
		return e.shards[b.shard].Status(b.local)
	}
	e.mu.Lock()
	_, known := e.meta[id]
	e.mu.Unlock()
	if !known {
		return 0, fmt.Errorf("core: unknown transaction %v", id)
	}
	return core.StatusWaiting, nil
}

// Abort rolls id back and removes it. Aborting a queued claim simply
// removes it from the admission queue (it holds no locks and no pins).
func (e *Engine) Abort(id txn.ID) error {
	for {
		if b, ok := e.bindingOf(id); ok {
			if err := e.shards[b.shard].Abort(b.local); err != nil {
				return err
			}
			e.release(id)
			e.unbind(id)
			return nil
		}
		e.regMu.Lock()
		e.mu.Lock()
		m, known := e.meta[id]
		if !known {
			e.mu.Unlock()
			e.regMu.Unlock()
			return fmt.Errorf("core: unknown transaction %v", id)
		}
		if m.state != statePending {
			// Placed while we acquired the locks; go around and abort it
			// on its shard.
			e.mu.Unlock()
			e.regMu.Unlock()
			continue
		}
		for i, qid := range e.queue {
			if qid == id {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		delete(e.meta, id)
		e.pendingAborts++
		admitted := e.admitLocked() // removal can unfence later claims
		e.mu.Unlock()
		e.place(admitted)
		e.regMu.Unlock()
		e.emit(core.Event{Kind: core.EventAbort, Txn: id, Detail: m.prog.Name})
		return nil
	}
}

// Forget removes a committed transaction's bookkeeping.
func (e *Engine) Forget(id txn.ID) error {
	b, ok := e.bindingOf(id)
	if !ok {
		e.mu.Lock()
		_, known := e.meta[id]
		e.mu.Unlock()
		if !known {
			return fmt.Errorf("core: unknown transaction %v", id)
		}
		return fmt.Errorf("core: cannot forget %v: status %v", id, core.StatusWaiting)
	}
	if err := e.shards[b.shard].Forget(b.local); err != nil {
		return err
	}
	e.unbind(id)
	return nil
}

// Locals returns a copy of id's local-variable values; for a queued
// transaction these are its program's initial values.
func (e *Engine) Locals(id txn.ID) (map[string]int64, error) {
	if b, ok := e.bindingOf(id); ok {
		return e.shards[b.shard].Locals(b.local)
	}
	e.mu.Lock()
	m, known := e.meta[id]
	e.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("core: unknown transaction %v", id)
	}
	out := make(map[string]int64, len(m.prog.Locals))
	for k, v := range m.prog.Locals {
		out[k] = v
	}
	return out, nil
}

// TxnStatsOf returns a snapshot of id's counters (zero for queued or
// unknown transactions, mirroring System.TxnStatsOf).
func (e *Engine) TxnStatsOf(id txn.ID) core.TxnStats {
	if b, ok := e.bindingOf(id); ok {
		return e.shards[b.shard].TxnStatsOf(b.local)
	}
	return core.TxnStats{}
}

// Waiters returns how many transactions are blocked on locks held by
// id (0 for queued or unknown transactions, which hold no locks). A
// transaction's lock set is pinned to one shard, so its waiters all
// live there too.
func (e *Engine) Waiters(id txn.ID) int {
	if b, ok := e.bindingOf(id); ok {
		return e.shards[b.shard].Waiters(b.local)
	}
	return 0
}

// Runnable returns the global IDs of transactions in StatusRunning,
// sorted. Queued claims are waiting and therefore excluded.
func (e *Engine) Runnable() []txn.ID {
	locals := make([][]txn.ID, e.n)
	for k, sh := range e.shards {
		locals[k] = sh.Runnable()
	}
	var out []txn.ID
	e.mapMu.RLock()
	for k, ids := range locals {
		for _, lid := range ids {
			out = append(out, mapID(e.l2g[k], lid))
		}
	}
	e.mapMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IDs returns all registered (and not yet forgotten/aborted) global
// transaction IDs, sorted.
func (e *Engine) IDs() []txn.ID {
	e.mu.Lock()
	out := make([]txn.ID, 0, len(e.meta))
	for id := range e.meta {
		out = append(out, id)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllCommitted reports whether every registered transaction has
// committed (queued claims have not).
func (e *Engine) AllCommitted() bool {
	e.mu.Lock()
	queued := len(e.queue) > 0
	e.mu.Unlock()
	if queued {
		return false
	}
	for _, sh := range e.shards {
		if !sh.AllCommitted() {
			return false
		}
	}
	return true
}

// Stats sums the shards' counters; aborts of still-queued claims are
// counted too.
func (e *Engine) Stats() core.Stats {
	var total core.Stats
	for _, sh := range e.shards {
		total = addStats(total, sh.Stats())
	}
	e.mu.Lock()
	total.Aborts += e.pendingAborts
	e.mu.Unlock()
	return total
}

// ShardStats returns each shard's own counter snapshot (index =
// shard), for imbalance diagnostics.
func (e *Engine) ShardStats() []core.Stats {
	out := make([]core.Stats, e.n)
	for k, sh := range e.shards {
		out[k] = sh.Stats()
	}
	return out
}

func addStats(a, b core.Stats) core.Stats {
	a.Steps += b.Steps
	a.Grants += b.Grants
	a.Waits += b.Waits
	a.Deadlocks += b.Deadlocks
	a.Rollbacks += b.Rollbacks
	a.Restarts += b.Restarts
	a.OpsLost += b.OpsLost
	a.Commits += b.Commits
	a.Victims += b.Victims
	a.Wounds += b.Wounds
	a.Dies += b.Dies
	a.Escalations += b.Escalations
	a.Aborts += b.Aborts
	return a
}

// Recorder returns a merged snapshot of the shards' committed
// histories on the shared clock, with episodes remapped to global IDs,
// or nil when history recording is disabled. Each call builds a fresh
// snapshot; take it after the transactions of interest have committed.
func (e *Engine) Recorder() *history.Recorder {
	if !e.cfg.RecordHistory {
		return nil
	}
	locals := make([][]history.Episode, e.n)
	for k, sh := range e.shards {
		locals[k] = sh.Recorder().Committed()
	}
	var eps []history.Episode
	e.mapMu.RLock()
	for k, list := range locals {
		for _, ep := range list {
			ep.Txn = mapID(e.l2g[k], ep.Txn)
			eps = append(eps, ep)
		}
	}
	e.mapMu.RUnlock()
	return history.Merged(eps)
}

// DebugSnapshots returns one consistent point-in-time view per shard,
// with transaction IDs remapped into the global namespace (shards are
// snapshotted one after another, so arcs within a shard are consistent
// but cross-shard timing is best-effort — acceptable for inspection,
// which is all this serves).
func (e *Engine) DebugSnapshots() []core.DebugSnapshot {
	out := make([]core.DebugSnapshot, e.n)
	for k, sh := range e.shards {
		out[k] = sh.DebugSnapshot()
		out[k].Shard = k
	}
	e.mapMu.RLock()
	for k := range out {
		m := e.l2g[k]
		for i := range out[k].Txns {
			out[k].Txns[i].ID = mapID(m, out[k].Txns[i].ID)
		}
		for i := range out[k].Arcs {
			out[k].Arcs[i].Waiter = mapID(m, out[k].Arcs[i].Waiter)
			out[k].Arcs[i].Holder = mapID(m, out[k].Arcs[i].Holder)
		}
	}
	e.mapMu.RUnlock()
	return out
}

var _ core.ShardSnapshotter = (*Engine)(nil)
var _ core.Quiescer = (*Engine)(nil)

// Quiesce runs fn while holding every shard's engine mutex at once, so
// no step, commit, install, or commit-log append can interleave on any
// shard — unlike DebugSnapshots, the view fn gets is consistent across
// shards, not just within one. Shard mutexes are acquired in index
// order; no other code path ever holds one shard's mutex while taking
// another's (see the lock-ordering note on Engine), so the nesting
// cannot deadlock. The pause is the cost of a few slice copies: the
// checkpoint subsystem keeps fn to two memcpys and an atomic load.
func (e *Engine) Quiesce(fn func()) {
	var rec func(k int)
	rec = func(k int) {
		if k == e.n {
			fn()
			return
		}
		e.shards[k].Quiesce(func() { rec(k + 1) })
	}
	rec(0)
}

// QueuedClaim describes one registered transaction still waiting for
// shard placement (see the package comment's admission queue).
type QueuedClaim struct {
	Txn     txn.ID `json:"txn"`
	Program string `json:"program"`
	// Position is the claim's place in the admission queue (0 = head).
	Position int `json:"position"`
}

// Queued returns the admission queue in order: claims registered but
// not yet placeable on a shard.
func (e *Engine) Queued() []QueuedClaim {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]QueuedClaim, 0, len(e.queue))
	for i, gid := range e.queue {
		out = append(out, QueuedClaim{Txn: gid, Program: e.meta[gid].prog.Name, Position: i})
	}
	return out
}

// QueueDepth returns the number of claims waiting for placement.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// CheckInvariants cross-checks every shard's internal consistency plus
// the routing directory: pin refcounts must equal the active
// transactions' lock sets, no entity may be pinned to two shards, and
// every queued claim must still be pending.
func (e *Engine) CheckInvariants() error {
	for k, sh := range e.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	want := map[string]pin{}
	for gid, m := range e.meta {
		if !m.pinned {
			continue
		}
		for _, ent := range m.lockSet {
			p, ok := want[ent]
			if !ok {
				want[ent] = pin{shard: m.shard, refs: 1}
				continue
			}
			if p.shard != m.shard {
				return fmt.Errorf("shard: entity %q pinned to both shard %d and shard %d (txn %v)",
					ent, p.shard, m.shard, gid)
			}
			p.refs++
			want[ent] = p
		}
	}
	if len(want) != len(e.pins) {
		return fmt.Errorf("shard: %d pinned entities, routing directory has %d", len(want), len(e.pins))
	}
	for ent, p := range e.pins {
		w, ok := want[ent]
		if !ok || w.shard != p.shard || w.refs != p.refs {
			return fmt.Errorf("shard: pin mismatch for %q: directory %+v, recomputed %+v", ent, *p, w)
		}
	}
	for _, gid := range e.queue {
		m, ok := e.meta[gid]
		if !ok {
			return fmt.Errorf("shard: queued claim %v has no metadata", gid)
		}
		if m.state != statePending {
			return fmt.Errorf("shard: queued claim %v is %d, want pending", gid, m.state)
		}
		if m.pinned {
			return fmt.Errorf("shard: queued claim %v holds pins", gid)
		}
	}
	return nil
}
