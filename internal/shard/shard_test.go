package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// bump returns a program that exclusively locks each entity in order
// and increments it.
func bump(name string, entities ...string) *txn.Program {
	b := txn.NewProgram(name)
	for i := range entities {
		b.Local(fmt.Sprintf("v%d", i), 0)
	}
	for i, e := range entities {
		l := fmt.Sprintf("v%d", i)
		b.LockX(e).Read(e, l).Write(e, value.Add(value.L(l), value.C(1)))
	}
	return b.MustBuild()
}

// homeShard mirrors the engine's single-entity hash placement.
func homeShard(entityName string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(entityName))
	return int(h.Sum32()) % n
}

// splitEntities returns one entity name homed on shard 0 and one homed
// on shard 1 (of n=2).
func splitEntities(t *testing.T, store *entity.Store) (onZero, onOne string) {
	t.Helper()
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("e%d", i)
		store.Define(name, 0)
		switch homeShard(name, 2) {
		case 0:
			if onZero == "" {
				onZero = name
			}
		case 1:
			if onOne == "" {
				onOne = name
			}
		}
		if onZero != "" && onOne != "" {
			return onZero, onOne
		}
	}
	t.Fatal("no split entities found in 64 names")
	return "", ""
}

func driveToCommit(t *testing.T, e *Engine, id txn.ID) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		res, err := e.Step(id)
		if err != nil {
			t.Fatalf("step %v: %v", id, err)
		}
		switch res.Outcome {
		case core.Committed, core.AlreadyCommitted:
			return
		case core.Blocked, core.BlockedDeadlock, core.StillWaiting:
			t.Fatalf("txn %v blocked (%v) while driving to commit", id, res.Outcome)
		}
	}
	t.Fatalf("txn %v did not commit in 10k steps", id)
}

// TestCrossShardClaimQueuesAndAdmits pins entities on two different
// shards, registers a transaction spanning both, and checks it queues
// (StatusWaiting, excluded from Runnable) until one holder commits,
// then is admitted with an EventAdmit and runs to commit.
func TestCrossShardClaimQueuesAndAdmits(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	var admits []txn.ID
	e := New(2, core.Config{Store: store, Strategy: core.MCS, OnEvent: func(ev core.Event) {
		if ev.Kind == core.EventAdmit {
			admits = append(admits, ev.Txn)
		}
	}})

	t1 := e.MustRegister(bump("t1", a))
	t2 := e.MustRegister(bump("t2", b))
	t3 := e.MustRegister(bump("t3", a, b)) // spans both shards: must queue

	if st, err := e.Status(t3); err != nil || st != core.StatusWaiting {
		t.Fatalf("t3 status = %v, %v; want waiting", st, err)
	}
	if res, err := e.Step(t3); err != nil || res.Outcome != core.Blocked {
		t.Fatalf("t3 step = %v, %v; want blocked", res.Outcome, err)
	}
	for _, id := range e.Runnable() {
		if id == t3 {
			t.Fatal("queued t3 listed runnable")
		}
	}
	if e.AllCommitted() {
		t.Fatal("AllCommitted with a queued claim")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	driveToCommit(t, e, t1) // releases a's pin; t3 becomes placeable on b's shard
	if len(admits) != 1 || admits[0] != t3 {
		t.Fatalf("admits = %v, want [%v]", admits, t3)
	}
	if st, _ := e.Status(t3); st != core.StatusRunning {
		t.Fatalf("t3 status after admission = %v, want running", st)
	}

	// t3 now shares b's shard with t2; drive both to commit (t3 may wait
	// on t2's lock, so interleave).
	driveToCommit(t, e, t2)
	driveToCommit(t, e, t3)
	if !e.AllCommitted() {
		t.Fatal("not all committed")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := store.MustGet(a); got != 2 { // t1 and t3 bumped a
		t.Errorf("%s = %d, want 2", a, got)
	}
	if got := store.MustGet(b); got != 2 { // t2 and t3 bumped b
		t.Errorf("%s = %d, want 2", b, got)
	}
	if st := e.Stats(); st.Commits != 3 {
		t.Errorf("commits = %d, want 3", st.Commits)
	}
}

// TestQueuedClaimFencesSharers: a claim that shares an entity with an
// older queued claim must queue behind it even if it could be placed,
// and admission happens in registration order.
func TestQueuedClaimFencesSharers(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	e := New(2, core.Config{Store: store})

	t1 := e.MustRegister(bump("t1", a))
	t2 := e.MustRegister(bump("t2", b))
	t3 := e.MustRegister(bump("t3", a, b)) // queued (spans shards)
	t4 := e.MustRegister(bump("t4", a))    // a is pinned to one shard, but t3 is ahead: fenced

	if st, _ := e.Status(t4); st != core.StatusWaiting {
		t.Fatalf("t4 status = %v, want waiting (fenced behind t3)", st)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	driveToCommit(t, e, t1)
	driveToCommit(t, e, t2)
	// t3 was admitted when t1 committed; t4 was admitted in the same
	// sweep or once t3 placed (both share a's shard group now).
	for _, id := range []txn.ID{t3, t4} {
		if st, err := e.Status(id); err != nil || st == core.StatusWaiting {
			// they may legitimately wait on each other's lock, but must be placed
			_ = st
		}
	}
	// Entry-order admission: t3 (older) must hold or wait for a before
	// t4; simplest observable guarantee is that everything commits and
	// the store shows all three bumps of a.
	for !e.AllCommitted() {
		progressed := false
		for _, id := range e.Runnable() {
			res, err := e.Step(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome != core.StillWaiting {
				progressed = true
			}
		}
		if !progressed {
			t.Fatal("no progress with uncommitted transactions")
		}
	}
	if got := store.MustGet(a); got != 3 { // t1, t3, t4
		t.Errorf("%s = %d, want 3", a, got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortQueuedClaim removes a queued claim without it ever touching
// a shard, counts the abort, and unfences claims queued behind it.
func TestAbortQueuedClaim(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	e := New(2, core.Config{Store: store})

	t1 := e.MustRegister(bump("t1", a))
	t2 := e.MustRegister(bump("t2", b))
	t3 := e.MustRegister(bump("t3", a, b)) // queued
	t4 := e.MustRegister(bump("t4", a))    // fenced behind t3

	if err := e.Abort(t3); err != nil {
		t.Fatalf("abort queued claim: %v", err)
	}
	if _, err := e.Status(t3); err == nil {
		t.Error("aborted claim still known")
	}
	if st := e.Stats(); st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
	// t4 is unfenced: a is pinned to t1's shard only, so it must now be
	// placed (waiting on t1's lock at worst, but registered).
	if st, err := e.Status(t4); err != nil {
		t.Fatal(err)
	} else if st == core.StatusWaiting {
		// Placed-and-waiting is fine; queued would show as excluded from
		// the shard. Distinguish via Step: a placed waiter reports
		// StillWaiting, a queued claim reports Blocked.
		if res, _ := e.Step(t4); res.Outcome == core.Blocked {
			t.Fatal("t4 still queued after the fencing claim was aborted")
		}
	}
	driveToCommit(t, e, t1)
	driveToCommit(t, e, t2)
	driveToCommit(t, e, t4)
	if !e.AllCommitted() {
		t.Fatal("not all committed")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortPlacedAndLifecycleErrors mirrors core's Abort/Forget
// contract through the sharded engine.
func TestAbortPlacedAndLifecycleErrors(t *testing.T) {
	store := entity.NewUniformStore("e", 8, 100)
	e := New(4, core.Config{Store: store})

	id := e.MustRegister(bump("t", "e0", "e1"))
	if _, err := e.Step(id); err != nil { // lock e0
		t.Fatal(err)
	}
	if err := e.Abort(id); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if _, err := e.Status(id); err == nil {
		t.Error("aborted txn still known")
	}
	if got := store.MustGet("e0"); got != 100 {
		t.Errorf("e0 = %d after abort, want 100", got)
	}

	id2 := e.MustRegister(bump("t2", "e2"))
	driveToCommit(t, e, id2)
	if err := e.Abort(id2); !errors.Is(err, core.ErrCommitted) {
		t.Errorf("abort committed = %v, want ErrCommitted", err)
	}
	if err := e.Forget(id2); err != nil {
		t.Fatalf("forget: %v", err)
	}
	if err := e.Forget(id2); err == nil {
		t.Error("double forget succeeded")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Aborts != 1 || st.Commits != 1 {
		t.Errorf("stats = %+v, want 1 abort and 1 commit", st)
	}
}

// TestMergedRecorder runs conflicting and disjoint transactions over
// two shards with history on and checks the merged oracle sees all of
// them under global IDs.
func TestMergedRecorder(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	e := New(2, core.Config{Store: store, RecordHistory: true})

	ids := []txn.ID{
		e.MustRegister(bump("t1", a)),
		e.MustRegister(bump("t2", b)),
		e.MustRegister(bump("t3", a, b)),
	}
	driveToCommit(t, e, ids[0])
	driveToCommit(t, e, ids[1])
	driveToCommit(t, e, ids[2])

	rec := e.Recorder()
	if rec == nil {
		t.Fatal("no merged recorder")
	}
	if _, err := rec.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	order, err := rec.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[txn.ID]bool{}
	for _, id := range order {
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("txn %v missing from merged serial order %v", id, order)
		}
	}
}

// TestShardStats checks the per-shard counter split sums to the global
// snapshot.
func TestShardStats(t *testing.T) {
	store := entity.NewUniformStore("e", 32, 0)
	e := New(4, core.Config{Store: store})
	var ids []txn.ID
	for i := 0; i < 16; i++ {
		ids = append(ids, e.MustRegister(bump(fmt.Sprintf("t%d", i), fmt.Sprintf("e%d", i*2))))
	}
	for _, id := range ids {
		driveToCommit(t, e, id)
	}
	per := e.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats len = %d", len(per))
	}
	var sum core.Stats
	for _, s := range per {
		sum = addStats(sum, s)
	}
	if got := e.Stats(); got != sum {
		t.Errorf("global stats %+v != shard sum %+v", got, sum)
	}
	if sum.Commits != 16 {
		t.Errorf("commits = %d, want 16", sum.Commits)
	}
	// 16 single-entity txns over 32 entities must not all land on one
	// shard.
	busy := 0
	for _, s := range per {
		if s.Commits > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of 4 shards saw commits; hash placement broken", busy)
	}
}

// TestSingleShardMatchesSystem drives the same little workload through
// a 1-shard engine and a plain System and compares stats and IDs — the
// unit-level half of the N=1 equivalence guarantee (the sim-level
// regression test compares full event streams).
func TestSingleShardMatchesSystem(t *testing.T) {
	progs := []*txn.Program{
		bump("t1", "e0", "e1"),
		bump("t2", "e1", "e2"),
		bump("t3", "e3"),
	}
	run := func(sys core.Engine) core.Stats {
		var ids []txn.ID
		for _, p := range progs {
			id, err := sys.Register(p.Clone())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for !sys.AllCommitted() {
			runnable := sys.Runnable()
			if len(runnable) == 0 {
				t.Fatal("stuck")
			}
			for _, id := range runnable {
				if _, err := sys.Step(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		if want := []txn.ID{1, 2, 3}; len(ids) != len(want) || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
		return sys.Stats()
	}
	a := run(core.New(core.Config{Store: entity.NewUniformStore("e", 4, 0), Strategy: core.MCS}))
	b := run(New(1, core.Config{Store: entity.NewUniformStore("e", 4, 0), Strategy: core.MCS}))
	if a != b {
		t.Errorf("System stats %+v != 1-shard stats %+v", a, b)
	}
}

// TestDebugSnapshotsRemapIDs blocks one transaction behind another on a
// single shard (plus a third on the other shard) and checks the debug
// snapshots report global transaction IDs — the waiter registered third
// must appear as its global ID, not its shard-local one.
func TestDebugSnapshotsRemapIDs(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	e := New(2, core.Config{Store: store, Strategy: core.MCS})

	t1 := e.MustRegister(bump("holder", a))
	t2 := e.MustRegister(bump("other", b))
	t3 := e.MustRegister(bump("waiter", a)) // same shard as t1, local ID 2

	if res, err := e.Step(t1); err != nil || res.Outcome != core.Progressed {
		t.Fatalf("t1 step = %v, %v", res.Outcome, err)
	}
	if res, err := e.Step(t3); err != nil || res.Outcome != core.Blocked {
		t.Fatalf("t3 step = %v, %v; want blocked on %s", res.Outcome, err, a)
	}

	snaps := e.DebugSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	seen := map[txn.ID]int{} // global ID -> shard
	var arcs []core.WaitArc
	for _, s := range snaps {
		if s.Shard != 0 && s.Shard != 1 {
			t.Fatalf("snapshot shard = %d", s.Shard)
		}
		for _, ts := range s.Txns {
			if _, dup := seen[ts.ID]; dup {
				t.Fatalf("global ID %v reported by two shards (IDs not remapped)", ts.ID)
			}
			seen[ts.ID] = s.Shard
		}
		arcs = append(arcs, s.Arcs...)
	}
	for _, id := range []txn.ID{t1, t2, t3} {
		if _, ok := seen[id]; !ok {
			t.Errorf("global ID %v missing from snapshots (got %v)", id, seen)
		}
	}
	if seen[t1] != seen[t3] || seen[t1] == seen[t2] {
		t.Errorf("shard placement wrong: %v", seen)
	}
	if len(arcs) != 1 || arcs[0].Waiter != t3 || arcs[0].Holder != t1 || arcs[0].Entity != a {
		t.Errorf("arcs = %+v, want %v waits for %v over %s", arcs, t3, t1, a)
	}

	driveToCommit(t, e, t1)
	driveToCommit(t, e, t2)
	driveToCommit(t, e, t3)
}

// TestQueuedInspection checks the admission-queue inspection hooks the
// admin endpoint uses: depth and ordered claims while a cross-shard
// registration is fenced, empty once it is admitted.
func TestQueuedInspection(t *testing.T) {
	store := entity.NewStore(nil)
	a, b := splitEntities(t, store)
	e := New(2, core.Config{Store: store, Strategy: core.MCS})

	t1 := e.MustRegister(bump("t1", a))
	t2 := e.MustRegister(bump("t2", b))
	t3 := e.MustRegister(bump("spanner", a, b))

	if got := e.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1", got)
	}
	q := e.Queued()
	if len(q) != 1 || q[0].Txn != t3 || q[0].Program != "spanner" || q[0].Position != 0 {
		t.Fatalf("queued = %+v, want [{%v spanner 0}]", q, t3)
	}

	driveToCommit(t, e, t1) // unpins a; t3 becomes placeable
	if got := e.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after admission = %d, want 0", got)
	}
	if q := e.Queued(); len(q) != 0 {
		t.Fatalf("queued after admission = %+v, want empty", q)
	}
	driveToCommit(t, e, t2)
	driveToCommit(t, e, t3)
}
