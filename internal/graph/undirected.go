package graph

import "sort"

// Undirected is an undirected graph over int vertex IDs, used for the
// paper's state-dependency graphs (§4). The zero value is not usable;
// call NewUndirected.
type Undirected struct {
	adj map[int]map[int]bool
}

// NewUndirected returns an empty undirected graph.
func NewUndirected() *Undirected {
	return &Undirected{adj: map[int]map[int]bool{}}
}

// AddNode ensures v exists.
func (g *Undirected) AddNode(v int) {
	if g.adj[v] == nil {
		g.adj[v] = map[int]bool{}
	}
}

// AddEdge inserts the undirected edge {u, v}, creating nodes as needed.
// Self loops are ignored (the SDG's first-write edges are self loops
// and carry no constraint).
func (g *Undirected) AddEdge(u, v int) {
	if u == v {
		g.AddNode(u)
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Undirected) HasEdge(u, v int) bool {
	return g.adj[u] != nil && g.adj[u][v]
}

// Nodes returns all vertices, sorted.
func (g *Undirected) Nodes() []int {
	out := make([]int, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Neighbors returns v's neighbors, sorted.
func (g *Undirected) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// ArticulationPoints returns the articulation points of the graph
// (vertices whose removal increases the number of connected
// components), sorted. Standard Tarjan low-link DFS.
func (g *Undirected) ArticulationPoints() []int {
	disc := map[int]int{}
	low := map[int]int{}
	isArt := map[int]bool{}
	timer := 0

	type frame struct {
		v, parent int
		nbrs      []int
		next      int
		children  int
	}

	for _, root := range g.Nodes() {
		if _, seen := disc[root]; seen {
			continue
		}
		stack := []frame{{v: root, parent: -1, nbrs: g.Neighbors(root)}}
		timer++
		disc[root], low[root] = timer, timer
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				if w == f.parent {
					continue
				}
				if d, seen := disc[w]; seen {
					if d < low[f.v] {
						low[f.v] = d
					}
					continue
				}
				f.children++
				timer++
				disc[w], low[w] = timer, timer
				stack = append(stack, frame{v: w, parent: f.v, nbrs: g.Neighbors(w)})
				continue
			}
			// Post-visit: propagate low to parent.
			done := *f
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[done.v] < low[p.v] {
					low[p.v] = low[done.v]
				}
				if p.parent != -1 && low[done.v] >= disc[p.v] {
					isArt[p.v] = true
				}
			}
			if done.parent == -1 && done.children > 1 {
				isArt[done.v] = true
			}
		}
	}
	out := make([]int, 0, len(isArt))
	for v := range isArt {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
