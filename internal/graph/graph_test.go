package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("edges")
	}
	if got := g.Succ(2); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("succ = %v", got)
	}
	if got := g.Pred(2); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("pred = %v", got)
	}
	if g.NumEdges() != 2 {
		t.Error("edge count")
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.NumEdges() != 1 {
		t.Error("remove edge")
	}
	g.AddEdge(1, 2)
	g.RemoveNode(2)
	if g.HasNode(2) || g.NumEdges() != 0 {
		t.Error("remove node")
	}
	if !g.HasNode(1) || !g.HasNode(3) {
		t.Error("other nodes must survive")
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if g.HasCycle() {
		t.Error("chain has no cycle")
	}
	g.AddEdge(4, 2)
	if !g.HasCycle() {
		t.Error("cycle not detected")
	}
	c := g.CycleThrough(2)
	if len(c) != 3 || c[0] != 2 {
		t.Errorf("cycle through 2 = %v", c)
	}
	if g.CycleThrough(1) != nil {
		t.Error("1 is not on a cycle")
	}
	if got := g.CycleThrough(99); got != nil {
		t.Error("unknown vertex")
	}
}

func TestSelfLoop(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(5, 5)
	if !g.HasCycle() {
		t.Error("self loop is a cycle")
	}
	if c := g.CycleThrough(5); len(c) != 1 || c[0] != 5 {
		t.Errorf("self cycle = %v", c)
	}
	if g.IsForest() {
		t.Error("self loop is not a forest")
	}
}

func TestAllCyclesThrough(t *testing.T) {
	g := NewDigraph()
	// Two cycles through 0: 0->1->0 and 0->1->2->0.
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	cycles := g.AllCyclesThrough(0, 0)
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	for _, c := range cycles {
		if c[0] != 0 {
			t.Errorf("cycle must start at 0: %v", c)
		}
	}
	if got := g.AllCyclesThrough(0, 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
}

func TestPathExists(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.PathExists(1, 3) || g.PathExists(3, 1) {
		t.Error("path")
	}
	if !g.PathExists(1, 1) {
		t.Error("trivial path to self")
	}
	if g.PathExists(1, 99) {
		t.Error("missing target")
	}
}

func TestIsForest(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(1, 2)
	g.AddEdge(3, 2) // two trees sharing a sink: still acyclic undirected? 1-2, 3-2: a path, fine
	g.AddEdge(4, 5)
	if !g.IsForest() {
		t.Error("disjoint trees are a forest")
	}
	g.AddEdge(1, 3) // closes undirected cycle 1-2-3-1
	if g.IsForest() {
		t.Error("undirected cycle not detected")
	}
	// Parallel arcs both directions are an undirected cycle.
	h := NewDigraph()
	h.AddEdge(1, 2)
	h.AddEdge(2, 1)
	if h.IsForest() {
		t.Error("antiparallel arcs are a cycle")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewDigraph()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 1)
	if g.HasEdge(2, 1) {
		t.Error("clone aliases original")
	}
}

func TestUndirectedBasics(t *testing.T) {
	u := NewUndirected()
	u.AddEdge(0, 1)
	u.AddEdge(1, 2)
	u.AddEdge(2, 2) // self loop ignored
	if !u.HasEdge(1, 0) {
		t.Error("undirected symmetry")
	}
	if got := u.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("neighbors = %v", got)
	}
	if got := u.Nodes(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("nodes = %v", got)
	}
}

// bruteArticulation finds articulation points by deletion and
// component counting.
func bruteArticulation(u *Undirected) []int {
	components := func(skip int) int {
		seen := map[int]bool{}
		n := 0
		for _, v := range u.Nodes() {
			if v == skip || seen[v] {
				continue
			}
			n++
			stack := []int{v}
			seen[v] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range u.Neighbors(x) {
					if w != skip && !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
		}
		return n
	}
	base := components(-1 << 30)
	var out []int
	for _, v := range u.Nodes() {
		if components(v) > base {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func TestArticulationChain(t *testing.T) {
	u := NewUndirected()
	for i := 0; i < 5; i++ {
		u.AddEdge(i, i+1)
	}
	want := []int{1, 2, 3, 4}
	if got := u.ArticulationPoints(); !reflect.DeepEqual(got, want) {
		t.Errorf("chain articulation = %v, want %v", got, want)
	}
	// Adding a chord 0-5 removes all of them.
	u.AddEdge(0, 5)
	if got := u.ArticulationPoints(); len(got) != 0 {
		t.Errorf("ring articulation = %v", got)
	}
}

func TestQuickArticulationMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := NewUndirected()
		n := 3 + rng.Intn(10)
		for v := 0; v < n; v++ {
			u.AddNode(v)
		}
		edges := rng.Intn(2 * n)
		for i := 0; i < edges; i++ {
			u.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got := fmt.Sprint(u.ArticulationPoints())
		want := fmt.Sprint(bruteArticulation(u))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// bruteMinCut enumerates all subsets of cycle vertices.
func bruteMinCut(in CutInstance) (int64, bool) {
	var verts []int
	seen := map[int]bool{}
	for _, c := range in.Cycles {
		for _, v := range c {
			if _, finite := in.Cost[v]; finite && !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
	}
	best := int64(1<<62 - 1)
	found := false
	for mask := 0; mask < 1<<len(verts); mask++ {
		var cut []int
		var cost int64
		for i, v := range verts {
			if mask&(1<<i) != 0 {
				cut = append(cut, v)
				cost += in.Cost[v]
			}
		}
		if in.CoversAllCycles(cut) && (!found || cost < best) {
			best, found = cost, true
		}
	}
	return best, found
}

func TestQuickExactCutOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		inst := CutInstance{Cost: map[int]int64{}}
		for v := 0; v < n; v++ {
			inst.Cost[v] = int64(1 + rng.Intn(10))
		}
		ncycles := 1 + rng.Intn(4)
		for c := 0; c < ncycles; c++ {
			k := 1 + rng.Intn(n)
			perm := rng.Perm(n)
			inst.Cycles = append(inst.Cycles, perm[:k])
		}
		cut, cost, ok := MinCostCutExact(inst, 20)
		wantCost, wantOK := bruteMinCut(inst)
		if ok != wantOK {
			return false
		}
		if !ok {
			return true
		}
		return cost == wantCost && inst.CoversAllCycles(cut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCoversAndNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for rep := 0; rep < 200; rep++ {
		n := 2 + rng.Intn(10)
		inst := CutInstance{Cost: map[int]int64{}}
		for v := 0; v < n; v++ {
			inst.Cost[v] = int64(1 + rng.Intn(10))
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			k := 1 + rng.Intn(n)
			inst.Cycles = append(inst.Cycles, rng.Perm(n)[:k])
		}
		gcut, gcost, ok := MinCostCutGreedy(inst)
		if !ok || !inst.CoversAllCycles(gcut) {
			t.Fatalf("greedy failed to cover: %+v", inst)
		}
		_, ecost, ok := MinCostCutExact(inst, 20)
		if !ok {
			t.Fatal("exact failed")
		}
		if gcost < ecost {
			t.Fatalf("greedy %d < exact %d", gcost, ecost)
		}
	}
}

func TestCutInfiniteCostVertices(t *testing.T) {
	inst := CutInstance{
		Cycles: [][]int{{1, 2}},
		Cost:   map[int]int64{1: 5}, // 2 is un-removable
	}
	cut, cost, ok := MinCostCutExact(inst, 20)
	if !ok || cost != 5 || len(cut) != 1 || cut[0] != 1 {
		t.Errorf("cut = %v cost %d ok %v", cut, cost, ok)
	}
	inst2 := CutInstance{Cycles: [][]int{{3}}, Cost: map[int]int64{}}
	if _, _, ok := MinCostCutExact(inst2, 20); ok {
		t.Error("uncoverable instance must fail")
	}
	if _, _, ok := MinCostCutGreedy(inst2); ok {
		t.Error("greedy uncoverable instance must fail")
	}
}

func TestCutEmptyInstance(t *testing.T) {
	cut, cost, ok := MinCostCutExact(CutInstance{}, 20)
	if !ok || cost != 0 || len(cut) != 0 {
		t.Error("empty instance should be trivially covered")
	}
}

func TestCutTooLargeForExact(t *testing.T) {
	inst := CutInstance{Cost: map[int]int64{}}
	var cyc []int
	for v := 0; v < 25; v++ {
		inst.Cost[v] = 1
		cyc = append(cyc, v)
	}
	inst.Cycles = [][]int{cyc}
	if _, _, ok := MinCostCutExact(inst, 20); ok {
		t.Error("should refuse instances above maxExact")
	}
	if _, _, ok := MinCostCutGreedy(inst); !ok {
		t.Error("greedy should handle large instances")
	}
}
