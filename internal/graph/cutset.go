package graph

import (
	"math"
	"math/bits"
	"sort"
)

// CutInstance is the §3.2 optimization problem: given the simple cycles
// closed by one lock request (all sharing the requester vertex) and a
// rollback cost per vertex, find a vertex set of minimum total cost
// whose removal breaks every cycle. The paper notes the general problem
// is NP-complete; MinCostCutExact solves small instances by exhaustive
// search and MinCostCutGreedy approximates larger ones.
type CutInstance struct {
	// Cycles lists the vertex sets of the cycles to break. Vertices are
	// arbitrary int IDs (transaction IDs in practice).
	Cycles [][]int
	// Cost maps each vertex to its rollback cost. Vertices missing from
	// Cost are treated as un-removable (infinite cost).
	Cost map[int]int64
}

// candidates returns the distinct vertices appearing in any cycle that
// have a finite cost, sorted for determinism.
func (in CutInstance) candidates() []int {
	set := map[int]bool{}
	for _, c := range in.Cycles {
		for _, v := range c {
			if _, ok := in.Cost[v]; ok {
				set[v] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// MinCostCutExact returns a minimum-total-cost vertex set covering all
// cycles, found by exhaustive subset search, and its cost. It returns
// ok=false if the instance has more than maxExact candidate vertices
// (use the greedy variant) or if no finite-cost cover exists.
func MinCostCutExact(in CutInstance, maxExact int) (cut []int, cost int64, ok bool) {
	if len(in.Cycles) == 0 {
		return nil, 0, true
	}
	if maxExact > 30 {
		maxExact = 30
	}
	cand := in.candidates()
	if len(cand) > maxExact {
		return nil, 0, false
	}
	idx := map[int]int{}
	for i, v := range cand {
		idx[v] = i
	}
	// Cycle masks over candidate bit positions.
	masks := make([]uint64, len(in.Cycles))
	for i, c := range in.Cycles {
		var m uint64
		for _, v := range c {
			if j, ok := idx[v]; ok {
				m |= 1 << uint(j)
			}
		}
		if m == 0 {
			return nil, 0, false // cycle with no removable vertex
		}
		masks[i] = m
	}
	best := int64(math.MaxInt64)
	bestSet := uint64(0)
	found := false
	total := uint64(1) << uint(len(cand))
	for s := uint64(0); s < total; s++ {
		var c int64
		for t := s; t != 0; t &= t - 1 {
			c += in.Cost[cand[bits.TrailingZeros64(t)]]
			if c >= best {
				break
			}
		}
		if c >= best && found {
			continue
		}
		covers := true
		for _, m := range masks {
			if m&s == 0 {
				covers = false
				break
			}
		}
		if covers && (!found || c < best) {
			best, bestSet, found = c, s, true
		}
	}
	if !found {
		return nil, 0, false
	}
	for t := bestSet; t != 0; t &= t - 1 {
		cut = append(cut, cand[bits.TrailingZeros64(t)])
	}
	sort.Ints(cut)
	return cut, best, true
}

// MinCostCutGreedy returns a vertex cover of the cycles chosen by the
// classic greedy set-cover heuristic (repeatedly pick the vertex with
// the best covered-cycles-per-cost ratio), and its cost. It returns
// ok=false only if some cycle has no finite-cost vertex.
func MinCostCutGreedy(in CutInstance) (cut []int, cost int64, ok bool) {
	uncovered := map[int]bool{}
	for i := range in.Cycles {
		uncovered[i] = true
	}
	inCycle := map[int][]int{} // vertex -> cycle indexes
	for i, c := range in.Cycles {
		for _, v := range c {
			if _, finite := in.Cost[v]; finite {
				inCycle[v] = append(inCycle[v], i)
			}
		}
	}
	for len(uncovered) > 0 {
		bestV := 0
		bestScore := math.Inf(-1)
		found := false
		verts := make([]int, 0, len(inCycle))
		for v := range inCycle {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		for _, v := range verts {
			n := 0
			for _, ci := range inCycle[v] {
				if uncovered[ci] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			c := in.Cost[v]
			var score float64
			if c <= 0 {
				score = math.Inf(1)
			} else {
				score = float64(n) / float64(c)
			}
			if score > bestScore {
				bestScore, bestV, found = score, v, true
			}
		}
		if !found {
			return nil, 0, false
		}
		cut = append(cut, bestV)
		cost += in.Cost[bestV]
		for _, ci := range inCycle[bestV] {
			delete(uncovered, ci)
		}
		delete(inCycle, bestV)
	}
	sort.Ints(cut)
	return cut, cost, true
}

// CoversAllCycles reports whether removing cut breaks every cycle in
// the instance.
func (in CutInstance) CoversAllCycles(cut []int) bool {
	inCut := map[int]bool{}
	for _, v := range cut {
		inCut[v] = true
	}
	for _, c := range in.Cycles {
		hit := false
		for _, v := range c {
			if inCut[v] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}
