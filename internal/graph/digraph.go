// Package graph provides the small graph algorithms the paper's
// machinery rests on: cycle detection and enumeration in directed
// graphs (deadlock detection, §3), forest tests (Theorem 1),
// articulation points in undirected graphs (state-dependency graphs,
// §4), and minimum-cost vertex cuts over cycle families (§3.2's
// NP-complete victim optimization, solved exactly for small instances
// and greedily otherwise).
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over int vertex IDs. The zero value is
// ready to use.
type Digraph struct {
	out map[int]map[int]bool
	in  map[int]map[int]bool
}

// NewDigraph returns an empty directed graph.
func NewDigraph() *Digraph {
	return &Digraph{
		out: map[int]map[int]bool{},
		in:  map[int]map[int]bool{},
	}
}

// AddNode ensures v exists.
func (g *Digraph) AddNode(v int) {
	if g.out[v] == nil {
		g.out[v] = map[int]bool{}
	}
	if g.in[v] == nil {
		g.in[v] = map[int]bool{}
	}
}

// HasNode reports whether v exists.
func (g *Digraph) HasNode(v int) bool {
	_, ok := g.out[v]
	return ok
}

// AddEdge inserts the arc u -> v, creating nodes as needed.
func (g *Digraph) AddEdge(u, v int) {
	g.AddNode(u)
	g.AddNode(v)
	g.out[u][v] = true
	g.in[v][u] = true
}

// RemoveEdge deletes the arc u -> v if present.
func (g *Digraph) RemoveEdge(u, v int) {
	if g.out[u] != nil {
		delete(g.out[u], v)
	}
	if g.in[v] != nil {
		delete(g.in[v], u)
	}
}

// HasEdge reports whether the arc u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	return g.out[u] != nil && g.out[u][v]
}

// RemoveNode deletes v and all incident arcs.
func (g *Digraph) RemoveNode(v int) {
	for w := range g.out[v] {
		delete(g.in[w], v)
	}
	for w := range g.in[v] {
		delete(g.out[w], v)
	}
	delete(g.out, v)
	delete(g.in, v)
}

// Nodes returns all vertices, sorted.
func (g *Digraph) Nodes() []int {
	out := make([]int, 0, len(g.out))
	for v := range g.out {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Succ returns the successors of v, sorted.
func (g *Digraph) Succ(v int) []int {
	out := make([]int, 0, len(g.out[v]))
	for w := range g.out[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Pred returns the predecessors of v, sorted.
func (g *Digraph) Pred(v int) []int {
	out := make([]int, 0, len(g.in[v]))
	for w := range g.in[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the arc count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.out {
		n += len(s)
	}
	return n
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph()
	for v := range g.out {
		c.AddNode(v)
		for w := range g.out[v] {
			c.AddEdge(v, w)
		}
	}
	return c
}

// HasCycle reports whether the graph contains any directed cycle.
func (g *Digraph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = gray
		for w := range g.out[v] {
			switch color[w] {
			case gray:
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := range g.out {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

// PathExists reports whether v is reachable from u.
func (g *Digraph) PathExists(u, v int) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	seen := map[int]bool{u: true}
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for w := range g.out[x] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// CycleThrough returns one simple cycle containing v, or nil if none.
// The returned slice lists the cycle's vertices starting at v, without
// repeating v at the end.
func (g *Digraph) CycleThrough(v int) []int {
	if !g.HasNode(v) {
		return nil
	}
	// Find a path from some successor of v back to v.
	parent := map[int]int{}
	seen := map[int]bool{}
	var stack []int
	for w := range g.out[v] {
		if w == v {
			return []int{v} // self loop
		}
		if !seen[w] {
			seen[w] = true
			parent[w] = v
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := range g.out[x] {
			if w == v {
				// Reconstruct v ... x.
				var rev []int
				for c := x; c != v; c = parent[c] {
					rev = append(rev, c)
				}
				cycle := []int{v}
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				return cycle
			}
			if !seen[w] {
				seen[w] = true
				parent[w] = x
				stack = append(stack, w)
			}
		}
	}
	return nil
}

// AllCyclesThrough enumerates simple cycles containing v, up to limit
// (limit <= 0 means no limit). Each cycle starts at v. The search is a
// DFS over simple paths from v back to v; exponential in the worst case
// but the deadlock graphs here are tiny.
func (g *Digraph) AllCyclesThrough(v int, limit int) [][]int {
	if !g.HasNode(v) {
		return nil
	}
	var cycles [][]int
	onPath := map[int]bool{v: true}
	path := []int{v}
	var dfs func(x int) bool // returns true when limit reached
	dfs = func(x int) bool {
		for _, w := range g.Succ(x) {
			if w == v {
				cycle := append([]int(nil), path...)
				cycles = append(cycles, cycle)
				if limit > 0 && len(cycles) >= limit {
					return true
				}
				continue
			}
			if onPath[w] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			delete(onPath, w)
		}
		return false
	}
	dfs(v)
	return cycles
}

// IsForest reports whether the graph, viewed as undirected, is acyclic
// (Theorem 1's characterization of deadlock freedom for exclusive-lock
// systems). Parallel arcs u->v and v->u count as a cycle.
func (g *Digraph) IsForest() bool {
	parent := map[int]int{}
	seen := map[int]bool{}
	type frame struct{ v, from int }
	for root := range g.out {
		if seen[root] {
			continue
		}
		stack := []frame{{root, -1}}
		seen[root] = true
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Undirected neighbors.
			nbrs := map[int]int{}
			for w := range g.out[f.v] {
				nbrs[w]++
			}
			for w := range g.in[f.v] {
				nbrs[w]++
			}
			if nbrs[f.v] > 0 {
				return false // self loop
			}
			usedParentEdge := false
			for w, mult := range nbrs {
				if w == f.from && !usedParentEdge {
					usedParentEdge = true
					if mult > 1 {
						return false // parallel arcs both ways
					}
					continue
				}
				if seen[w] {
					return false
				}
				seen[w] = true
				parent[w] = f.v
				stack = append(stack, frame{w, f.v})
			}
		}
	}
	return true
}

// String renders the graph as sorted adjacency lists.
func (g *Digraph) String() string {
	s := ""
	for _, v := range g.Nodes() {
		s += fmt.Sprintf("%d -> %v\n", v, g.Succ(v))
	}
	return s
}
