package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

func runTraced(t *testing.T, seed int64, w *bytes.Buffer) []Record {
	t.Helper()
	var sink io.Writer
	if w != nil {
		sink = w
	}
	rec := NewRecorder(sink)
	workload := sim.Generate(sim.GenConfig{
		Txns: 6, DBSize: 8, HotSet: 4, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.4, Shape: sim.Mixed, Seed: seed,
	})
	_, err := sim.Run(workload, sim.RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, OnEvent: rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	return rec.Records()
}

func TestReplayProducesIdenticalTrace(t *testing.T) {
	a := runTraced(t, 3, nil)
	b := runTraced(t, 3, nil)
	if d := Diff(a, b); d != "" {
		t.Fatalf("deterministic replay diverged: %s", d)
	}
	c := runTraced(t, 4, nil)
	if d := Diff(a, c); d == "" {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRoundTripThroughJSON(t *testing.T) {
	var buf bytes.Buffer
	a := runTraced(t, 5, &buf)
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(a, parsed); d != "" {
		t.Fatalf("serialization round trip diverged: %s", d)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("want parse error")
	}
	recs, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: %v %v", recs, err)
	}
}

func TestSummaryAndPercentiles(t *testing.T) {
	records := []Record{
		{Kind: "grant"}, {Kind: "grant"},
		{Kind: "wait"},
		{Kind: "deadlock"},
		{Kind: "rollback", Txn: 1, Lost: 4},
		{Kind: "rollback", Txn: 2, Lost: 10},
		{Kind: "rollback", Txn: 1, Lost: 2},
		{Kind: "commit"}, {Kind: "commit"},
	}
	s := Summarize(records)
	if s.Grants != 2 || s.Waits != 1 || s.Deadlocks != 1 || s.Rollbacks != 3 || s.Commits != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.PerTxnRollbacks[txn.ID(1)] != 2 {
		t.Error("per-txn counts")
	}
	if got := s.Percentile(0); got != 2 {
		t.Errorf("p0 = %d", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Errorf("p100 = %d", got)
	}
	if got := s.Percentile(50); got != 4 {
		t.Errorf("p50 = %d", got)
	}
	hist := s.Histogram([]int64{3, 5})
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestEmptySummary(t *testing.T) {
	s := Summarize(nil)
	if s.Percentile(50) != 0 {
		t.Error("empty percentile")
	}
	if h := s.Histogram([]int64{1}); h[0] != 0 || h[1] != 0 {
		t.Error("empty histogram")
	}
}

func TestDeadlockRecordFields(t *testing.T) {
	var found bool
	for _, r := range runTraced(t, 6, nil) {
		if r.Kind == "deadlock" {
			found = true
			if r.Requester == 0 || len(r.Cycles) == 0 || len(r.Victims) == 0 {
				t.Errorf("deadlock record incomplete: %+v", r)
			}
		}
	}
	if !found {
		t.Skip("no deadlock on this seed")
	}
}
