// Package trace records engine event streams in a line-oriented JSON
// format, supports replay validation (a re-run must produce the
// identical stream — the engine is deterministic under a deterministic
// driver), and computes summary statistics used by the experiment
// reports (rollback-depth histograms and percentiles).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

// Record is one serialized engine event.
type Record struct {
	Seq    int64  `json:"seq"`
	Kind   string `json:"kind"`
	Txn    int    `json:"txn"`
	Entity string `json:"entity,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Rollback fields.
	FromState   int64 `json:"fromState,omitempty"`
	ToState     int64 `json:"toState,omitempty"`
	Lost        int64 `json:"lost,omitempty"`
	ToLockState int   `json:"toLockState,omitempty"`
	// Deadlock fields.
	Requester int     `json:"requester,omitempty"`
	Cycles    [][]int `json:"cycles,omitempty"`
	Victims   []int   `json:"victims,omitempty"`
}

// FromEvent converts an engine event.
func FromEvent(seq int64, e core.Event) Record {
	r := Record{
		Seq:         seq,
		Kind:        e.Kind.String(),
		Txn:         int(e.Txn),
		Entity:      e.Entity,
		Detail:      e.Detail,
		FromState:   e.FromState,
		ToState:     e.ToState,
		Lost:        e.Lost,
		ToLockState: e.ToLockState,
	}
	if d := e.Deadlock; d != nil {
		r.Requester = int(d.Requester)
		for _, c := range d.Cycles {
			cycle := make([]int, len(c))
			for i, id := range c {
				cycle[i] = int(id)
			}
			r.Cycles = append(r.Cycles, cycle)
		}
		for _, v := range d.Victims {
			r.Victims = append(r.Victims, int(v.Txn))
		}
	}
	return r
}

// Recorder collects records; optionally streaming them to w as JSON
// lines.
type Recorder struct {
	seq     int64
	records []Record
	w       io.Writer
	err     error
}

// NewRecorder creates a Recorder; w may be nil to record in memory
// only.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w}
}

// Hook returns the core.Config.OnEvent function feeding this recorder.
func (r *Recorder) Hook() func(core.Event) {
	return func(e core.Event) {
		r.seq++
		rec := FromEvent(r.seq, e)
		r.records = append(r.records, rec)
		if r.w != nil && r.err == nil {
			b, err := json.Marshal(rec)
			if err == nil {
				_, err = fmt.Fprintf(r.w, "%s\n", b)
			}
			if err != nil {
				r.err = err
			}
		}
	}
}

// Records returns the captured records (shared slice; read-only).
func (r *Recorder) Records() []Record { return r.records }

// Err returns any streaming write error.
func (r *Recorder) Err() error { return r.err }

// Read parses a JSON-lines trace.
func Read(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Diff compares two traces and returns a description of the first
// divergence, or "" if identical.
func Diff(a, b []Record) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if string(ja) != string(jb) {
			return fmt.Sprintf("record %d differs:\n  a: %s\n  b: %s", i, ja, jb)
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
	}
	return ""
}

// Summary aggregates a trace.
type Summary struct {
	Events    int
	Grants    int
	Waits     int
	Deadlocks int
	Rollbacks int
	Commits   int
	// Depths are the individual rollback losses, sorted.
	Depths []int64
	// PerTxnRollbacks counts rollbacks by transaction.
	PerTxnRollbacks map[txn.ID]int
}

// Summarize computes the Summary of a trace.
func Summarize(records []Record) Summary {
	s := Summary{PerTxnRollbacks: map[txn.ID]int{}}
	for _, r := range records {
		s.Events++
		switch r.Kind {
		case "grant":
			s.Grants++
		case "wait":
			s.Waits++
		case "deadlock":
			s.Deadlocks++
		case "rollback":
			s.Rollbacks++
			s.Depths = append(s.Depths, r.Lost)
			s.PerTxnRollbacks[txn.ID(r.Txn)]++
		case "commit":
			s.Commits++
		}
	}
	sort.Slice(s.Depths, func(i, j int) bool { return s.Depths[i] < s.Depths[j] })
	return s
}

// Percentile returns the p-th percentile (0-100) of the rollback
// depths, or 0 if none.
func (s Summary) Percentile(p float64) int64 {
	if len(s.Depths) == 0 {
		return 0
	}
	if p <= 0 {
		return s.Depths[0]
	}
	if p >= 100 {
		return s.Depths[len(s.Depths)-1]
	}
	idx := int(p / 100 * float64(len(s.Depths)-1))
	return s.Depths[idx]
}

// Histogram buckets the rollback depths into the given boundaries
// (bucket i counts depths in (bounds[i-1], bounds[i]]; the first bucket
// is [0, bounds[0]], a final overflow bucket catches the rest).
func (s Summary) Histogram(bounds []int64) []int {
	counts := make([]int, len(bounds)+1)
	for _, d := range s.Depths {
		placed := false
		for i, b := range bounds {
			if d <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}
