package value

import (
	"errors"
	"testing"
)

// slotView builds a slot mapping plus the matching slice of values from
// a map of locals, so tests can diff slot evaluation against the
// tree-walking Env evaluation of the same expression.
func slotView(locals map[string]int64) (map[string]int, []int64) {
	slots := map[string]int{}
	vals := make([]int64, 0, len(locals))
	for n, v := range locals {
		slots[n] = len(vals)
		vals = append(vals, v)
	}
	return slots, vals
}

func TestEvalSlotsMatchesEval(t *testing.T) {
	locals := map[string]int64{"x": 7, "y": -3, "z": 2}
	slots, vals := slotView(locals)
	exprs := []Expr{
		C(42),
		L("x"),
		Add(L("x"), C(1)),
		Sub(L("x"), L("y")),
		Mul(Add(L("x"), L("y")), L("z")),
		Div(L("x"), L("z")),
		Mod(L("x"), L("z")),
		Min(L("x"), L("y")),
		Max(L("x"), Mul(L("y"), C(-5))),
		Add(Mul(L("x"), L("x")), Div(Sub(L("y"), C(1)), L("z"))),
	}
	for _, e := range exprs {
		want, werr := e.Eval(MapEnv(locals))
		got, gerr := EvalSlots(e, slots, vals)
		if want != got || (werr == nil) != (gerr == nil) {
			t.Errorf("%s: slots = %d,%v; eval = %d,%v", e, got, gerr, want, werr)
		}
	}
}

func TestEvalSlotsErrorSemantics(t *testing.T) {
	slots, vals := slotView(map[string]int64{"x": 1})
	// Unknown local errors identically to the tree walker, and the
	// *left* failure wins when both sides would fail.
	for _, e := range []Expr{
		L("ghost"),
		Add(L("ghost"), L("x")),
		Add(L("x"), L("ghost")),
		Add(L("ghost"), Div(L("x"), C(0))),
	} {
		want, werr := e.Eval(MapEnv{"x": 1})
		got, gerr := EvalSlots(e, slots, vals)
		if werr == nil || gerr == nil {
			t.Fatalf("%s: expected both to fail (eval err %v, slots err %v)", e, werr, gerr)
		}
		if werr.Error() != gerr.Error() {
			t.Errorf("%s: slots error %q != eval error %q", e, gerr, werr)
		}
		if !errors.Is(gerr, ErrUnknownLocal) {
			t.Errorf("%s: slots error %v does not wrap ErrUnknownLocal", e, gerr)
		}
		if got != want {
			t.Errorf("%s: values differ on error: %d vs %d", e, got, want)
		}
	}
	// Division and modulo by zero return the sentinel unwrapped.
	for _, e := range []Expr{Div(L("x"), C(0)), Mod(C(5), Sub(L("x"), C(1)))} {
		if _, err := EvalSlots(e, slots, vals); err != ErrDivideByZero {
			t.Errorf("%s: err = %v, want ErrDivideByZero", e, err)
		}
	}
}

func TestEvalSlotsZeroAlloc(t *testing.T) {
	slots, vals := slotView(map[string]int64{"x": 7, "y": 3})
	e := Add(Mul(L("x"), L("y")), Min(L("x"), C(100)))
	if n := testing.AllocsPerRun(200, func() {
		v, err := EvalSlots(e, slots, vals)
		if err != nil || v != 28 {
			t.Fatalf("eval = %d, %v", v, err)
		}
	}); n != 0 {
		t.Fatalf("slot eval allocates %v per run, want 0", n)
	}
}

func TestEvalSlotsForeignExprFallback(t *testing.T) {
	slots, vals := slotView(map[string]int64{"x": 4})
	v, err := EvalSlots(Add(doubler{L("x")}, C(1)), slots, vals)
	if err != nil || v != 9 {
		t.Fatalf("foreign expr eval = %d, %v; want 9", v, err)
	}
}

// doubler is an Expr implementation from outside the package's known
// node set, exercising the Env fallback.
type doubler struct{ inner Expr }

func (d doubler) Eval(env Env) (int64, error) {
	v, err := d.inner.Eval(env)
	return 2 * v, err
}
func (d doubler) Refs(dst []string) []string { return d.inner.Refs(dst) }
func (d doubler) String() string             { return "2*(" + d.inner.String() + ")" }
