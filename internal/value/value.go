// Package value provides the deterministic expression language used by
// transaction programs.
//
// Transactions in the reproduced system (Fussell/Kedem/Silberschatz,
// SIGMOD 1981) are sequences of atomic operations over global entities
// and local variables. To make rollback correctness *checkable* — a
// rolled-back and re-executed transaction must recompute exactly the
// values it would have produced — writes carry side-effect-free integer
// expressions over the transaction's local variables rather than opaque
// callbacks.
package value

import (
	"errors"
	"fmt"
	"strconv"
)

// Env resolves local-variable names during expression evaluation.
type Env interface {
	// Local returns the current value of the named local variable and
	// whether it exists.
	Local(name string) (int64, bool)
}

// MapEnv is the trivial Env backed by a map.
type MapEnv map[string]int64

// Local implements Env.
func (m MapEnv) Local(name string) (int64, bool) {
	v, ok := m[name]
	return v, ok
}

// ErrUnknownLocal is wrapped by evaluation errors for unresolved names.
var ErrUnknownLocal = errors.New("value: unknown local variable")

// ErrDivideByZero is wrapped by evaluation errors for x/0 and x%0.
var ErrDivideByZero = errors.New("value: division by zero")

// Expr is a side-effect-free integer expression over local variables.
type Expr interface {
	// Eval computes the expression under env.
	Eval(env Env) (int64, error)
	// Refs appends the names of all locals the expression reads.
	Refs(dst []string) []string
	// String renders the expression in infix form.
	String() string
}

// Const is a literal value.
type Const int64

// Eval implements Expr.
func (c Const) Eval(Env) (int64, error) { return int64(c), nil }

// Refs implements Expr.
func (c Const) Refs(dst []string) []string { return dst }

func (c Const) String() string { return strconv.FormatInt(int64(c), 10) }

// Local references a local variable by name.
type Local string

// Eval implements Expr.
func (l Local) Eval(env Env) (int64, error) {
	v, ok := env.Local(string(l))
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLocal, string(l))
	}
	return v, nil
}

// Refs implements Expr.
func (l Local) Refs(dst []string) []string { return append(dst, string(l)) }

func (l Local) String() string { return string(l) }

// BinOp enumerates binary operators.
type BinOp int

// Supported binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpMin
	OpMax
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// Binary applies a BinOp to two subexpressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (b Binary) Eval(env Env) (int64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, ErrDivideByZero
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, ErrDivideByZero
		}
		return l % r, nil
	case OpMin:
		if l < r {
			return l, nil
		}
		return r, nil
	case OpMax:
		if l > r {
			return l, nil
		}
		return r, nil
	default:
		return 0, fmt.Errorf("value: unknown operator %v", b.Op)
	}
}

// Refs implements Expr.
func (b Binary) Refs(dst []string) []string {
	return b.R.Refs(b.L.Refs(dst))
}

func (b Binary) String() string {
	if b.Op == OpMin || b.Op == OpMax {
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.L, b.R)
	}
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Convenience constructors.

// Add returns l + r.
func Add(l, r Expr) Expr { return Binary{OpAdd, l, r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Binary{OpSub, l, r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Binary{OpMul, l, r} }

// Div returns l / r (truncated); evaluating with r == 0 is an error.
func Div(l, r Expr) Expr { return Binary{OpDiv, l, r} }

// Mod returns l % r; evaluating with r == 0 is an error.
func Mod(l, r Expr) Expr { return Binary{OpMod, l, r} }

// Min returns the smaller of l and r.
func Min(l, r Expr) Expr { return Binary{OpMin, l, r} }

// Max returns the larger of l and r.
func Max(l, r Expr) Expr { return Binary{OpMax, l, r} }

// C is shorthand for Const(v).
func C(v int64) Expr { return Const(v) }

// L is shorthand for Local(name).
func L(name string) Expr { return Local(name) }
