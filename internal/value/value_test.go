package value

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEval(t *testing.T, e Expr, env Env) int64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return v
}

func TestConstAndLocal(t *testing.T) {
	env := MapEnv{"x": 7}
	if got := mustEval(t, C(42), env); got != 42 {
		t.Errorf("C(42) = %d", got)
	}
	if got := mustEval(t, L("x"), env); got != 7 {
		t.Errorf("L(x) = %d", got)
	}
	if _, err := L("missing").Eval(env); !errors.Is(err, ErrUnknownLocal) {
		t.Errorf("want ErrUnknownLocal, got %v", err)
	}
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{"a": 10, "b": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Add(L("a"), L("b")), 13},
		{Sub(L("a"), L("b")), 7},
		{Mul(L("a"), L("b")), 30},
		{Div(L("a"), L("b")), 3},
		{Mod(L("a"), L("b")), 1},
		{Min(L("a"), L("b")), 3},
		{Max(L("a"), L("b")), 10},
		{Add(C(1), Mul(C(2), C(3))), 7},
		{Sub(C(0), C(5)), -5},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, env); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	env := MapEnv{}
	for _, e := range []Expr{Div(C(1), C(0)), Mod(C(1), C(0))} {
		if _, err := e.Eval(env); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("%s: want ErrDivideByZero, got %v", e, err)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	env := MapEnv{"x": 1}
	for _, e := range []Expr{
		Add(L("gone"), C(1)),
		Add(C(1), L("gone")),
		Mul(Div(C(1), C(0)), L("x")),
	} {
		if _, err := e.Eval(env); err == nil {
			t.Errorf("%s: want error", e)
		}
	}
}

func TestRefs(t *testing.T) {
	e := Add(L("a"), Mul(L("b"), Add(C(1), L("a"))))
	refs := e.Refs(nil)
	want := map[string]int{"a": 2, "b": 1}
	got := map[string]int{}
	for _, r := range refs {
		got[r]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("ref %q count = %d, want %d", k, got[k], n)
		}
	}
	if len(refs) != 3 {
		t.Errorf("refs = %v", refs)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(L("x"), C(1)), "(x + 1)"},
		{Min(C(2), L("y")), "min(2, y)"},
		{Mod(L("a"), C(7)), "(a % 7)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// randomExpr builds a random expression over the given locals.
func randomExpr(rng *rand.Rand, locals []string, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if len(locals) > 0 && rng.Intn(2) == 0 {
			return L(locals[rng.Intn(len(locals))])
		}
		return C(int64(rng.Intn(100) - 50))
	}
	ops := []func(Expr, Expr) Expr{Add, Sub, Mul, Min, Max}
	op := ops[rng.Intn(len(ops))]
	return op(randomExpr(rng, locals, depth-1), randomExpr(rng, locals, depth-1))
}

// TestQuickDeterministic: evaluation is a pure function of the
// environment — the property rollback re-execution relies on.
func TestQuickDeterministic(t *testing.T) {
	f := func(seed int64, a, b, c int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, []string{"a", "b", "c"}, 4)
		env := MapEnv{"a": a, "b": b, "c": c}
		v1, err1 := e.Eval(env)
		v2, err2 := e.Eval(env)
		return (err1 == nil) == (err2 == nil) && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefsComplete: removing any referenced local from the
// environment makes evaluation fail, and evaluation only depends on
// referenced locals.
func TestQuickRefsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, []string{"a", "b"}, 3)
		full := MapEnv{"a": 5, "b": 9, "unrelated": 1}
		v1, err := e.Eval(full)
		if err != nil {
			return false
		}
		// Unreferenced locals don't matter.
		refs := map[string]bool{}
		for _, r := range e.Refs(nil) {
			refs[r] = true
		}
		trimmed := MapEnv{}
		for k, v := range full {
			if refs[k] {
				trimmed[k] = v
			}
		}
		v2, err := e.Eval(trimmed)
		if err != nil || v2 != v1 {
			return false
		}
		// Removing any referenced local fails evaluation.
		for r := range refs {
			broken := MapEnv{}
			for k, v := range trimmed {
				if k != r {
					broken[k] = v
				}
			}
			if _, err := e.Eval(broken); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
