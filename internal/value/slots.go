package value

import "fmt"

// This file adds the slot-resolved evaluation used on the execution
// hot path. Plain Eval resolves every Local through a string-keyed Env
// that callers typically build per evaluation (a map allocation each
// time); EvalSlots walks the same tree against a shared name->slot map
// and a slot-indexed []int64 of current values, so evaluation performs
// no allocation and the only per-reference cost is one map probe.
//
// An earlier revision of this path compiled expressions to postfix
// instruction slices at analysis time. That only pays off when one
// program is evaluated many times; every driver in this repository
// registers each program exactly once (generated workloads are unique
// per transaction), so per-Register compilation was pure overhead —
// it dominated server-side CPU profiles. Direct slot evaluation does
// strictly less total work for the register-once case while keeping
// the zero-allocation property on the step path.
//
// Error semantics match Expr.Eval exactly: an unresolved local is
// reported when evaluation reaches it (left before right), division
// by zero returns ErrDivideByZero unwrapped, and both short-circuit
// the rest of the expression.

// EvalSlots evaluates e with each Local resolved through slots (name
// to index, e.g. txn.Analysis.LocalSlot) into the locals slice.
func EvalSlots(e Expr, slots map[string]int, locals []int64) (int64, error) {
	switch x := e.(type) {
	case Const:
		return int64(x), nil
	case Local:
		s, ok := slots[string(x)]
		if !ok || s < 0 || s >= len(locals) {
			return 0, fmt.Errorf("%w: %q", ErrUnknownLocal, string(x))
		}
		return locals[s], nil
	case Binary:
		l, err := EvalSlots(x.L, slots, locals)
		if err != nil {
			return 0, err
		}
		r, err := EvalSlots(x.R, slots, locals)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpAdd:
			return l + r, nil
		case OpSub:
			return l - r, nil
		case OpMul:
			return l * r, nil
		case OpDiv:
			if r == 0 {
				return 0, ErrDivideByZero
			}
			return l / r, nil
		case OpMod:
			if r == 0 {
				return 0, ErrDivideByZero
			}
			return l % r, nil
		case OpMin:
			if l < r {
				return l, nil
			}
			return r, nil
		case OpMax:
			if l > r {
				return l, nil
			}
			return r, nil
		default:
			return 0, fmt.Errorf("value: unknown operator %v", x.Op)
		}
	default:
		// Expr implementations from outside the package evaluate under
		// an Env view of the slot-indexed locals. This path allocates
		// (the interface conversion escapes) but is never taken by
		// programs built from this package's constructors.
		return e.Eval(slotEnv{slots, locals})
	}
}

// slotEnv adapts slot-indexed locals back to the Env interface for the
// foreign-Expr fallback.
type slotEnv struct {
	slots  map[string]int
	locals []int64
}

func (s slotEnv) Local(name string) (int64, bool) {
	i, ok := s.slots[name]
	if !ok || i < 0 || i >= len(s.locals) {
		return 0, false
	}
	return s.locals[i], true
}
