// Package page implements the beyond-RAM entity backend: a heap file
// of fixed-size pages of entity slots plus a bounded buffer pool with
// CLOCK replacement, flush-before-evict, and per-slot pinning.
//
// The paper's deferred-update discipline (§4) is what keeps this layer
// free of recovery machinery: the global store only ever holds
// committed-or-unlocked values — uncommitted work lives in
// per-transaction copies that die with the process — so an evicted page
// needs no undo hooks and no write-ahead ordering of its own. The heap
// file is a spill area, not a durability source: crash recovery rebuilds
// the store from the checkpoint base plus the WAL tail (internal/durable
// handles both), and Open therefore truncates any previous heap file.
//
// # Pin protocol
//
// The engine pins every entity in a transaction's lock set when the
// transaction registers (the structural, exclusive-lock path) and
// unpins at commit or abort. Pin faults the slot's page resident and
// holds it there — a pinned page is never chosen for eviction — so the
// engine's step fast paths (the Tier A/B CAS and stripe-mutex paths of
// the striped engine) read and install through the pool without ever
// touching the disk: every miss happens on the structural path, before
// the step that needs the value.
//
// If every frame is pinned when a fault needs one, the pool
// over-allocates a frame beyond its configured capacity rather than
// deadlock (counted in Stats.OverCap); the frame count settles back
// toward the cap as pins drain, because eviction is always preferred
// over allocation once the pool is at or above capacity. Memory is
// therefore bounded by max(PoolPages, concurrently-pinned pages + 1).
//
// # Page layout
//
// A page of PageSize bytes holds n = PageSize*8/65 slots: n little-
// endian int64 values followed by an n-bit defined bitmap. A slot id
// maps to page id/n, slot id%n. Pages absent from the file (beyond EOF,
// or within a hole) read as all-zero: every slot undefined.
package page

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Options tunes a Pool.
type Options struct {
	// PageSize is the page size in bytes. Default 4096, minimum 128.
	PageSize int
	// PoolPages is the buffer-pool capacity in frames. Default 64,
	// minimum 2.
	PoolPages int
	// OnMiss, when non-nil, observes the wall nanoseconds of each read
	// miss (victim selection + flush-before-evict + page read), called
	// outside no locks but with the pool mutex held — keep it to an
	// atomic observation (the obs histogram qualifies).
	OnMiss func(ns int64)
}

// Stats is a point-in-time counter snapshot of a Pool.
type Stats struct {
	// Hits and Misses count slot accesses served by a resident page vs
	// ones that faulted the page in from the heap file.
	Hits   int64
	Misses int64
	// Evictions counts pages dropped from the pool to make room;
	// Flushes counts page writes to the heap file (flush-before-evict
	// plus explicit FlushAll work).
	Evictions int64
	Flushes   int64
	// PinnedPages is the number of currently pinned frames (gauge).
	PinnedPages int64
	// Frames is the number of allocated frames (gauge; normally the
	// configured capacity once warm). OverCap counts faults that had to
	// allocate beyond capacity because every frame was pinned.
	Frames  int64
	OverCap int64
	// HeapPages is the number of pages the heap file spans (gauge).
	HeapPages int64
}

// frame is one buffer-pool slot.
type frame struct {
	pageNo uint32
	data   []byte
	valid  bool // holds a page
	dirty  bool
	pins   int
	ref    bool // CLOCK reference bit
}

// Pool is the paged entity backend: a heap file plus a bounded frame
// cache. All methods are safe for concurrent use (one internal mutex —
// the callers above already shard/stripe their own concurrency).
type Pool struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	pageSize int
	perPage  int
	cap      int
	frames   []*frame
	table    map[uint32]*frame
	hand     int
	maxPage  uint32 // highest pageNo ever touched + 1
	stats    Stats
	onMiss   func(ns int64)
	closed   bool

	scratch []byte // SnapshotRange read buffer for non-resident pages
}

// PerPage returns the number of entity slots per page for a page size.
func PerPage(pageSize int) int { return pageSize * 8 / 65 }

// Open creates the heap file at path (truncating any previous content:
// the heap is a spill area, rebuilt from the WAL and checkpoint base by
// the durability layer) and returns an empty pool over it.
func Open(path string, opts Options) (*Pool, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 4096
	}
	if opts.PageSize < 128 {
		return nil, fmt.Errorf("page: page size %d below minimum 128", opts.PageSize)
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 64
	}
	if opts.PoolPages < 2 {
		return nil, fmt.Errorf("page: pool of %d pages below minimum 2", opts.PoolPages)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("page: open heap: %w", err)
	}
	return &Pool{
		f:        f,
		path:     path,
		pageSize: opts.PageSize,
		perPage:  PerPage(opts.PageSize),
		cap:      opts.PoolPages,
		table:    make(map[uint32]*frame, opts.PoolPages),
		onMiss:   opts.OnMiss,
		scratch:  make([]byte, opts.PageSize),
	}, nil
}

// Path returns the heap file path.
func (p *Pool) Path() string { return p.path }

// SlotsPerPage returns the number of entity slots each page holds.
func (p *Pool) SlotsPerPage() int { return p.perPage }

// Cap returns the configured pool capacity in frames.
func (p *Pool) Cap() int { return p.cap }

var errClosed = errors.New("page: pool closed")

// locate splits a slot id into its page number and in-page slot index.
func (p *Pool) locate(id uint32) (pageNo uint32, slot int) {
	return id / uint32(p.perPage), int(id % uint32(p.perPage))
}

// slotValue reads slot s of a raw page image.
func (p *Pool) slotValue(data []byte, s int) (int64, bool) {
	bit := data[p.perPage*8+s/8] & (1 << (s % 8))
	if bit == 0 {
		return 0, false
	}
	off := s * 8
	v := uint64(data[off]) | uint64(data[off+1])<<8 | uint64(data[off+2])<<16 | uint64(data[off+3])<<24 |
		uint64(data[off+4])<<32 | uint64(data[off+5])<<40 | uint64(data[off+6])<<48 | uint64(data[off+7])<<56
	return int64(v), true
}

// setSlot writes slot s of a raw page image and sets/clears its
// defined bit.
func (p *Pool) setSlot(data []byte, s int, v int64, defined bool) {
	off := s * 8
	u := uint64(v)
	data[off] = byte(u)
	data[off+1] = byte(u >> 8)
	data[off+2] = byte(u >> 16)
	data[off+3] = byte(u >> 24)
	data[off+4] = byte(u >> 32)
	data[off+5] = byte(u >> 40)
	data[off+6] = byte(u >> 48)
	data[off+7] = byte(u >> 56)
	mask := byte(1 << (s % 8))
	if defined {
		data[p.perPage*8+s/8] |= mask
	} else {
		data[p.perPage*8+s/8] &^= mask
	}
}

// frameFor returns the resident frame for pageNo, faulting it in if
// needed. Caller holds p.mu.
func (p *Pool) frameFor(pageNo uint32) (*frame, error) {
	if fr, ok := p.table[pageNo]; ok {
		fr.ref = true
		p.stats.Hits++
		return fr, nil
	}
	p.stats.Misses++
	var t0 time.Time
	if p.onMiss != nil {
		t0 = time.Now()
	}
	fr, err := p.victim()
	if err != nil {
		return nil, err
	}
	if err := p.readPage(pageNo, fr.data); err != nil {
		fr.valid = false
		return nil, err
	}
	fr.pageNo = pageNo
	fr.valid = true
	fr.dirty = false
	fr.pins = 0
	fr.ref = true
	p.table[pageNo] = fr
	if pageNo >= p.maxPage {
		p.maxPage = pageNo + 1
	}
	if p.onMiss != nil {
		p.onMiss(int64(time.Since(t0)))
	}
	return fr, nil
}

// victim produces a free frame: a fresh allocation while below
// capacity, otherwise the CLOCK-selected unpinned page (flushed first
// if dirty), falling back to an over-capacity allocation when every
// frame is pinned.
func (p *Pool) victim() (*frame, error) {
	if len(p.frames) < p.cap {
		fr := &frame{data: make([]byte, p.pageSize)}
		p.frames = append(p.frames, fr)
		p.stats.Frames = int64(len(p.frames))
		return fr, nil
	}
	// CLOCK: two full sweeps — the first clears reference bits, the
	// second must then find any unpinned frame.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		fr := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.valid {
			if fr.dirty {
				if err := p.writePage(fr.pageNo, fr.data); err != nil {
					return nil, err
				}
			}
			delete(p.table, fr.pageNo)
			fr.valid = false
			p.stats.Evictions++
		}
		return fr, nil
	}
	// Every frame pinned: over-allocate rather than deadlock.
	p.stats.OverCap++
	fr := &frame{data: make([]byte, p.pageSize)}
	p.frames = append(p.frames, fr)
	p.stats.Frames = int64(len(p.frames))
	return fr, nil
}

// readPage fills buf with pageNo's content; pages beyond EOF (or the
// short tail of the last page) read as zeros.
func (p *Pool) readPage(pageNo uint32, buf []byte) error {
	n, err := p.f.ReadAt(buf, int64(pageNo)*int64(p.pageSize))
	if err != nil && err != io.EOF {
		return fmt.Errorf("page: read page %d: %w", pageNo, err)
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

// writePage persists one page image to the heap file.
func (p *Pool) writePage(pageNo uint32, buf []byte) error {
	if _, err := p.f.WriteAt(buf, int64(pageNo)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("page: write page %d: %w", pageNo, err)
	}
	p.stats.Flushes++
	return nil
}

// Read returns slot id's value and defined bit, faulting its page in
// if needed.
func (p *Pool) Read(id uint32) (int64, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, false, errClosed
	}
	pageNo, slot := p.locate(id)
	fr, err := p.frameFor(pageNo)
	if err != nil {
		return 0, false, err
	}
	v, ok := p.slotValue(fr.data, slot)
	return v, ok, nil
}

// Write installs v into slot id if the slot is defined, reporting
// ok=false otherwise. The page is marked dirty, never written through:
// durability belongs to the WAL, not the heap.
func (p *Pool) Write(id uint32, v int64) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errClosed
	}
	pageNo, slot := p.locate(id)
	fr, err := p.frameFor(pageNo)
	if err != nil {
		return false, err
	}
	if _, ok := p.slotValue(fr.data, slot); !ok {
		return false, nil
	}
	p.setSlot(fr.data, slot, v, true)
	fr.dirty = true
	return true, nil
}

// Define sets slot id to v and marks it defined, reporting whether the
// slot was newly defined.
func (p *Pool) Define(id uint32, v int64) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errClosed
	}
	pageNo, slot := p.locate(id)
	fr, err := p.frameFor(pageNo)
	if err != nil {
		return false, err
	}
	_, was := p.slotValue(fr.data, slot)
	p.setSlot(fr.data, slot, v, true)
	fr.dirty = true
	return !was, nil
}

// Undefine clears slot id's defined bit, reporting whether it was
// defined.
func (p *Pool) Undefine(id uint32) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errClosed
	}
	pageNo, slot := p.locate(id)
	fr, err := p.frameFor(pageNo)
	if err != nil {
		return false, err
	}
	_, was := p.slotValue(fr.data, slot)
	if was {
		p.setSlot(fr.data, slot, 0, false)
		fr.dirty = true
	}
	return was, nil
}

// Pin faults slot id's page resident and holds it there: a pinned page
// is never selected for eviction. Pins nest (one per Pin call).
func (p *Pool) Pin(id uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	pageNo, _ := p.locate(id)
	fr, err := p.frameFor(pageNo)
	if err != nil {
		return err
	}
	if fr.pins == 0 {
		p.stats.PinnedPages++
	}
	fr.pins++
	return nil
}

// Unpin releases one Pin of slot id's page. Unpinning a page that is
// not resident or not pinned panics: the engine's pin protocol
// guarantees a pinned page stays resident, so a violation is a
// protocol bug, not a runtime condition.
func (p *Pool) Unpin(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pageNo, _ := p.locate(id)
	fr, ok := p.table[pageNo]
	if !ok || fr.pins <= 0 {
		panic(fmt.Sprintf("page: unpin of unpinned page %d", pageNo))
	}
	fr.pins--
	if fr.pins == 0 {
		p.stats.PinnedPages--
	}
}

// Resident reports whether slot id's page is currently in the pool
// (test hook).
func (p *Pool) Resident(id uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	pageNo, _ := p.locate(id)
	_, ok := p.table[pageNo]
	return ok
}

// FlushAll writes every dirty resident page to the heap file.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	return p.flushAllLocked()
}

func (p *Pool) flushAllLocked() error {
	for _, fr := range p.frames {
		if fr.valid && fr.dirty {
			if err := p.writePage(fr.pageNo, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// SnapshotRange reads slots [0, n) into vals/defined (both must have
// length >= n) without disturbing the pool: resident pages — including
// dirty ones — are decoded from memory, everything else is read
// straight from the heap file into a scratch buffer, never admitted.
// Callers needing a consistent snapshot must exclude writers (the
// checkpoint path runs this under the engine quiesce).
func (p *Pool) SnapshotRange(n int, vals []int64, defined []bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	pages := (n + p.perPage - 1) / p.perPage
	for pg := 0; pg < pages; pg++ {
		data := p.scratch
		if fr, ok := p.table[uint32(pg)]; ok {
			data = fr.data
		} else if err := p.readPage(uint32(pg), p.scratch); err != nil {
			return err
		}
		base := pg * p.perPage
		for s := 0; s < p.perPage && base+s < n; s++ {
			vals[base+s], defined[base+s] = p.slotValue(data, s)
		}
	}
	return nil
}

// Stats returns a counter snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.HeapPages = int64(p.maxPage)
	return st
}

// Close flushes dirty pages and closes the heap file. Further
// operations fail.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	ferr := p.flushAllLocked()
	p.closed = true
	if cerr := p.f.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}
