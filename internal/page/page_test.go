package page

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func newPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	p, err := Open(filepath.Join(t.TempDir(), "heap.dat"), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestDefineReadWrite(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 2})
	if p.SlotsPerPage() != 128*8/65 {
		t.Fatalf("SlotsPerPage = %d, want %d", p.SlotsPerPage(), 128*8/65)
	}

	// Undefined slot reads as zero/false.
	if v, ok, err := p.Read(7); err != nil || ok || v != 0 {
		t.Fatalf("Read undefined = %d,%v,%v", v, ok, err)
	}
	// Write to undefined slot reports ok=false.
	if ok, err := p.Write(7, 5); err != nil || ok {
		t.Fatalf("Write undefined = %v,%v", ok, err)
	}
	// Define then read back; negative values round-trip.
	if fresh, err := p.Define(7, -42); err != nil || !fresh {
		t.Fatalf("Define = %v,%v", fresh, err)
	}
	if v, ok, err := p.Read(7); err != nil || !ok || v != -42 {
		t.Fatalf("Read = %d,%v,%v", v, ok, err)
	}
	// Redefine is not fresh.
	if fresh, err := p.Define(7, 1); err != nil || fresh {
		t.Fatalf("redefine = %v,%v", fresh, err)
	}
	// Write to defined slot succeeds.
	if ok, err := p.Write(7, 99); err != nil || !ok {
		t.Fatalf("Write = %v,%v", ok, err)
	}
	if v, _, _ := p.Read(7); v != 99 {
		t.Fatalf("Read after write = %d", v)
	}
	// Undefine clears it.
	if was, err := p.Undefine(7); err != nil || !was {
		t.Fatalf("Undefine = %v,%v", was, err)
	}
	if _, ok, _ := p.Read(7); ok {
		t.Fatal("slot still defined after Undefine")
	}
}

// TestEvictionRoundTrip drives the working set far past the pool and
// checks every value survives eviction and fault-in.
func TestEvictionRoundTrip(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 3})
	per := p.SlotsPerPage()
	n := per * 20 // 20 pages through a 3-frame pool
	for i := 0; i < n; i++ {
		if _, err := p.Define(uint32(i), int64(i)*3); err != nil {
			t.Fatalf("Define %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("expected evictions and flushes, got %+v", st)
	}
	if st.Frames > int64(p.Cap()) {
		t.Fatalf("frames %d exceed cap %d with nothing pinned", st.Frames, p.Cap())
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 500; k++ {
		i := rng.Intn(n)
		v, ok, err := p.Read(uint32(i))
		if err != nil || !ok || v != int64(i)*3 {
			t.Fatalf("Read %d = %d,%v,%v want %d", i, v, ok, err, i*3)
		}
	}
}

// TestPinnedNeverEvicted is the property test from the issue: a pinned
// page must survive arbitrary fault pressure without a disk re-read,
// including pressure that forces over-capacity allocation.
func TestPinnedNeverEvicted(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 2})
	per := p.SlotsPerPage()
	pinned := uint32(0)
	if _, err := p.Define(pinned, 123); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(pinned); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if got := p.Stats().PinnedPages; got != 1 {
		t.Fatalf("PinnedPages = %d, want 1", got)
	}
	// Fault 50 distinct pages through a 2-frame pool.
	for pg := 1; pg <= 50; pg++ {
		if _, err := p.Define(uint32(pg*per), int64(pg)); err != nil {
			t.Fatal(err)
		}
		if !p.Resident(pinned) {
			t.Fatalf("pinned page evicted after faulting page %d", pg)
		}
	}
	missesBefore := p.Stats().Misses
	if v, ok, _ := p.Read(pinned); !ok || v != 123 {
		t.Fatalf("pinned read = %d,%v", v, ok)
	}
	if p.Stats().Misses != missesBefore {
		t.Fatal("reading a pinned slot missed")
	}

	// Pin a second slot on another page: with both frames pinned, a
	// fault must over-allocate rather than evict a pinned page.
	other := uint32(60 * per)
	if _, err := p.Define(other, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(other); err != nil {
		t.Fatal(err)
	}
	for p.Stats().Frames <= int64(p.Cap()) {
		// Evictions of unpinned frames may absorb a few faults first.
		pg := p.Stats().Misses + 100
		if _, _, err := p.Read(uint32(int(pg) * per)); err != nil {
			t.Fatal(err)
		}
		if !p.Resident(pinned) || !p.Resident(other) {
			t.Fatal("pinned page evicted under full-pin pressure")
		}
	}
	if p.Stats().OverCap == 0 {
		t.Fatal("expected an over-capacity allocation")
	}

	// Unpin both; continued pressure shrinks residency back to normal
	// eviction behavior (pinned pages become evictable).
	p.Unpin(pinned)
	p.Unpin(other)
	if got := p.Stats().PinnedPages; got != 0 {
		t.Fatalf("PinnedPages = %d after unpin, want 0", got)
	}
	for pg := 100; pg < 160; pg++ {
		if _, _, err := p.Read(uint32(pg * per)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident(pinned) && p.Resident(other) {
		t.Fatal("both unpinned pages survived 60 faults through a tiny pool")
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned page did not panic")
		}
	}()
	p.Unpin(0)
}

// TestSnapshotRangeSeesDirtyResident checks the checkpoint path: a
// snapshot must merge dirty resident frames with on-disk pages, and
// must not admit non-resident pages into the pool.
func TestSnapshotRangeSeesDirtyResident(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 2})
	per := p.SlotsPerPage()
	n := per * 6
	for i := 0; i < n; i++ {
		if _, err := p.Define(uint32(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch slot 0 so page 0 is resident and dirty, leaving older
	// pages flushed and evicted.
	if ok, err := p.Write(0, -1); err != nil || !ok {
		t.Fatal(err)
	}
	framesBefore := p.Stats().Frames
	vals := make([]int64, n)
	defined := make([]bool, n)
	if err := p.SnapshotRange(n, vals, defined); err != nil {
		t.Fatalf("SnapshotRange: %v", err)
	}
	for i := 0; i < n; i++ {
		want := int64(i)
		if i == 0 {
			want = -1
		}
		if !defined[i] || vals[i] != want {
			t.Fatalf("snapshot[%d] = %d,%v want %d", i, vals[i], defined[i], want)
		}
	}
	if p.Stats().Frames != framesBefore {
		t.Fatal("SnapshotRange admitted pages into the pool")
	}
}

func TestFlushAllAndReopenReads(t *testing.T) {
	p := newPool(t, Options{PageSize: 128, PoolPages: 2})
	per := p.SlotsPerPage()
	for i := 0; i < per*4; i++ {
		if _, err := p.Define(uint32(i), int64(i)+1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	// After a flush, a snapshot of purely on-disk state matches.
	n := per * 4
	vals := make([]int64, n)
	defined := make([]bool, n)
	if err := p.SnapshotRange(n, vals, defined); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !defined[i] || vals[i] != int64(i)+1000 {
			t.Fatalf("slot %d = %d,%v", i, vals[i], defined[i])
		}
	}
}

func TestOnMissObserved(t *testing.T) {
	var misses int
	p, err := Open(filepath.Join(t.TempDir(), "heap.dat"), Options{
		PageSize: 128, PoolPages: 2,
		OnMiss: func(ns int64) {
			if ns < 0 {
				t.Errorf("negative miss latency %d", ns)
			}
			misses++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	per := p.SlotsPerPage()
	for pg := 0; pg < 8; pg++ {
		if _, err := p.Define(uint32(pg*per), 1); err != nil {
			t.Fatal(err)
		}
	}
	if int64(misses) != p.Stats().Misses {
		t.Fatalf("OnMiss fired %d times, stats say %d", misses, p.Stats().Misses)
	}
	if misses < 8 {
		t.Fatalf("expected >=8 misses, got %d", misses)
	}
}

func TestOptionValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "a"), Options{PageSize: 64}); err == nil {
		t.Fatal("tiny page size accepted")
	}
	if _, err := Open(filepath.Join(dir, "b"), Options{PoolPages: 1}); err == nil {
		t.Fatal("one-frame pool accepted")
	}
	p, err := Open(filepath.Join(dir, "c"), Options{})
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	defer p.Close()
	if p.SlotsPerPage() != 4096*8/65 || p.Cap() != 64 {
		t.Fatalf("defaults = %d slots, cap %d", p.SlotsPerPage(), p.Cap())
	}
}
