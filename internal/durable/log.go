package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/core"
	"partialrollback/internal/wal"
)

// File is the slice of *os.File the log needs — injectable so tests
// can fail writes and fsyncs deterministically.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// pend is one enqueued append batch: a commit's whole write-set, or a
// single shrinking-phase unlock install (commits == 0). Keeping commit
// boundaries lets SyncAlways give each commit its own fsync while
// SyncGroup concatenates freely.
type pend struct {
	buf     []byte
	lastSeq uint64
	commits int
	records int
}

// Log is one shard's redo log: appends enqueue under a mutex (called
// with the shard's engine mutex held, so never any IO here), a flusher
// goroutine writes and fsyncs batches, and tickets park on a condition
// variable until their sequence number is durable.
type Log struct {
	set   *Set
	shard int
	file  File
	path  string // active segment path; "" for injected test files (rotation disabled)

	mu             sync.Mutex
	work           sync.Cond // signals the flusher: pending or closing, or rotation done
	durable        sync.Cond // signals waiters: durableSeq, err, or flushing moved
	pending        []pend
	pendingCommits int
	lastSeq        uint64 // highest seq enqueued to this log
	durableSeq     uint64 // highest seq durably flushed
	fileLastSeq    uint64 // highest seq written to the active segment file
	fileBytes      int64  // bytes in the active segment file
	flushing       bool   // flusher is mid-IO outside the mutex
	rotating       bool   // rotate owns the file; flusher must not touch it
	err            error  // sticky first failure; everything after fails
	closing        bool
	done           chan struct{} // flusher exited
	pool           [][]byte      // recycled pend buffers
	wbuf           []byte        // flusher's batch concatenation buffer
	st             Stats
}

// newLog starts a log over an already-open active segment file.
// fileBytes/fileLastSeq seed the active-segment accounting with what
// recovery found already in the file (zero for a fresh segment).
func newLog(set *Set, shard int, f File, path string, fileBytes int64, fileLastSeq uint64) *Log {
	l := &Log{set: set, shard: shard, file: f, path: path,
		fileBytes: fileBytes, fileLastSeq: fileLastSeq, done: make(chan struct{})}
	l.work.L = &l.mu
	l.durable.L = &l.mu
	go l.flusher()
	return l
}

// LogInstall enqueues a shrinking-phase unlock install. It carries no
// ticket: any transaction able to observe the installed value must
// first take the entity's lock — which happens-after this append under
// the same engine mutex — so that transaction's own commit ticket
// (which waits for the log tail) covers this record.
func (l *Log) LogInstall(w core.CommitWrite) {
	l.mu.Lock()
	if l.err == nil && !l.closing && len(w.Name) <= 0xffff {
		seq := l.set.gseq.Add(1)
		p := pend{buf: l.takeBufLocked(), lastSeq: seq, records: 1}
		p.buf = wal.AppendRecord(p.buf, w.Name, w.Val, seq)
		l.pushLocked(p)
	}
	l.mu.Unlock()
}

// LogCommit enqueues a committing transaction's write-set and returns
// its durability ticket. Read-only commits (empty writes) enqueue
// nothing but still wait for the current log tail, so a commit that
// observed other transactions' writes is never acknowledged before
// those writes are durable. Called under the engine mutex; must not
// block.
func (l *Log) LogCommit(writes []core.CommitWrite) core.CommitAck {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		return errAck{ErrClosed}
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return errAck{err}
	}
	for _, w := range writes {
		if len(w.Name) > 0xffff {
			err := fmt.Errorf("durable: shard %d: entity name too long (%d bytes)", l.shard, len(w.Name))
			l.err = err
			l.durable.Broadcast()
			l.mu.Unlock()
			return errAck{err}
		}
	}
	switch {
	case len(writes) == 1:
		// A single-record commit is atomic by itself; no group marker.
		seq := l.set.gseq.Add(1)
		p := pend{buf: l.takeBufLocked(), lastSeq: seq, commits: 1, records: 1}
		p.buf = wal.AppendRecord(p.buf, writes[0].Name, writes[0].Val, seq)
		l.pushLocked(p)
	case len(writes) > 1:
		// Multi-record commits get a group marker (empty name, value =
		// member count) ahead of their records, so recovery can refuse
		// to half-apply a commit whose tail was torn off by a crash.
		n := uint64(len(writes))
		base := l.set.gseq.Add(n + 1)
		seq := base - n
		p := pend{buf: l.takeBufLocked(), lastSeq: base, commits: 1, records: len(writes) + 1}
		p.buf = wal.AppendRecord(p.buf, "", int64(len(writes)), seq)
		for _, w := range writes {
			seq++
			p.buf = wal.AppendRecord(p.buf, w.Name, w.Val, seq)
		}
		l.pushLocked(p)
	}
	t := &ticket{log: l, seq: l.lastSeq}
	l.mu.Unlock()
	return t
}

func (l *Log) pushLocked(p pend) {
	l.lastSeq = p.lastSeq
	l.pending = append(l.pending, p)
	l.pendingCommits += p.commits
	l.st.Appends += int64(p.records)
	l.st.Commits += int64(p.commits)
	l.work.Signal()
}

func (l *Log) takeBufLocked() []byte {
	if n := len(l.pool); n > 0 {
		b := l.pool[n-1]
		l.pool = l.pool[:n-1]
		return b[:0]
	}
	return nil
}

func (l *Log) putBufLocked(b []byte) {
	if b != nil && len(l.pool) < 64 {
		l.pool = append(l.pool, b)
	}
}

// barrier waits for everything enqueued so far to be durable.
func (l *Log) barrier() error {
	l.mu.Lock()
	seq := l.lastSeq
	l.mu.Unlock()
	t := ticket{log: l, seq: seq}
	return t.Wait()
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// sealedPath names a sealed segment: wal-<k>.sealed-<maxseq>.log in
// the active segment's directory, the sequence zero-padded so
// lexicographic order is sequence order.
func sealedPath(active string, shard int, maxSeq uint64) string {
	return filepath.Join(filepath.Dir(active), fmt.Sprintf("wal-%d.sealed-%020d.log", shard, maxSeq))
}

// rotate seals the active segment — syncs and closes it, renames it to
// wal-<shard>.sealed-<maxseq>.log, and opens a fresh active segment —
// returning the sealed segment's description. Appends keep enqueueing
// throughout (the flusher is parked while the rotation owns the file;
// pending records land in the new segment, which is correct because a
// sealed segment only promises MaxSeq as an upper bound on what it
// holds). A log whose active segment holds no records is left alone,
// as is one whose file was injected without a path (tests) or that has
// already failed or is closing.
func (l *Log) rotate() (seg checkpoint.Segment, rotated bool, err error) {
	l.mu.Lock()
	if l.path == "" || l.err != nil || l.closing || l.rotating {
		err = l.err
		l.mu.Unlock()
		return checkpoint.Segment{}, false, err
	}
	// Park the flusher first, then wait out any in-flight flush; no new
	// flush can start while rotating is set.
	l.rotating = true
	for l.flushing {
		l.durable.Wait()
	}
	if l.err != nil || l.closing || l.fileLastSeq == 0 {
		err = l.err
		l.rotating = false
		l.work.Broadcast()
		l.mu.Unlock()
		return checkpoint.Segment{}, false, err
	}
	old := l.file
	maxSeq := l.fileLastSeq
	bytes := l.fileBytes
	l.mu.Unlock()

	// IO outside the mutex: appends (called under the engine mutex)
	// keep enqueueing; only the flusher is parked. Sync before the
	// rename so a sealed segment's contents are always durable (under
	// SyncOff the tail may not have been fsynced yet).
	sealed := sealedPath(l.path, l.shard, maxSeq)
	ioErr := old.Sync()
	if ioErr == nil {
		ioErr = old.Close()
	}
	if ioErr == nil {
		ioErr = os.Rename(l.path, sealed)
	}
	var nf *os.File
	if ioErr == nil {
		nf, ioErr = wal.Create(l.path) // fsyncs the directory, covering the rename too
	}

	l.mu.Lock()
	defer func() {
		l.rotating = false
		l.work.Broadcast()
		l.durable.Broadcast()
		l.mu.Unlock()
	}()
	if ioErr != nil {
		if l.err == nil {
			l.err = fmt.Errorf("durable: shard %d: rotate: %w", l.shard, ioErr)
		}
		return checkpoint.Segment{}, false, l.err
	}
	l.file = nf
	l.fileBytes, l.fileLastSeq = 0, 0
	return checkpoint.Segment{Shard: l.shard, Path: sealed, MaxSeq: maxSeq, Bytes: bytes}, true, nil
}

// status snapshots the active-segment accounting for /debug/wal.
func (l *Log) status() ShardLogStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	pendingRecs := 0
	for i := range l.pending {
		pendingRecs += l.pending[i].records
	}
	return ShardLogStatus{
		Shard:          l.shard,
		ActiveBytes:    l.fileBytes,
		ActiveLastSeq:  l.fileLastSeq,
		DurableSeq:     l.durableSeq,
		PendingRecords: pendingRecs,
	}
}

// flusher is the log's single IO goroutine: it takes batches off the
// pending queue, concatenates them into one write, fsyncs per the sync
// mode, and advances durableSeq. It exits when closed with an empty
// queue, so Close never loses acknowledged-to-be-pending records.
func (l *Log) flusher() {
	defer close(l.done)
	for {
		l.mu.Lock()
		// While a rotation owns the file, only enqueue — never touch IO
		// state (rotate closes the old segment and installs a new one).
		for l.rotating || (len(l.pending) == 0 && !l.closing) {
			l.work.Wait()
		}
		if len(l.pending) == 0 {
			l.mu.Unlock()
			return
		}
		mode := l.set.opts.Mode
		// Group mode: hold the batch open for the window so concurrent
		// committers join it, unless it is already full or closing.
		if mode == SyncGroup && l.set.opts.Window > 0 && !l.closing && l.pendingCommits < l.set.opts.MaxBatch {
			l.mu.Unlock()
			time.Sleep(l.set.opts.Window)
			l.mu.Lock()
			for l.rotating { // a rotation may have started during the window
				l.work.Wait()
			}
		}
		// Take the batch: everything pending, except under SyncAlways,
		// where exactly one write-commit (plus any unlock installs queued
		// before it) gets its own fsync.
		n := len(l.pending)
		if mode == SyncAlways {
			n = 1
			for i := range l.pending {
				if l.pending[i].commits > 0 {
					n = i + 1
					break
				}
			}
		}
		l.wbuf = l.wbuf[:0]
		var commits, records int
		var last uint64
		for _, p := range l.pending[:n] {
			l.wbuf = append(l.wbuf, p.buf...)
			commits += p.commits
			records += p.records
			last = p.lastSeq
			l.putBufLocked(p.buf)
		}
		rest := copy(l.pending, l.pending[n:])
		for i := rest; i < len(l.pending); i++ {
			l.pending[i] = pend{}
		}
		l.pending = l.pending[:rest]
		l.pendingCommits -= commits
		failed := l.err != nil
		l.flushing = true
		l.mu.Unlock()

		var err error
		var syncDur time.Duration
		if !failed {
			_, err = l.file.Write(l.wbuf)
			if err == nil && mode != SyncOff {
				t0 := time.Now()
				err = l.file.Sync()
				if d := l.set.opts.SyncDelay; err == nil && d > 0 {
					time.Sleep(d)
				}
				syncDur = time.Since(t0)
			}
			if err == nil && l.set.opts.OnFlush != nil {
				l.set.opts.OnFlush(FlushInfo{
					Shard: l.shard, Commits: commits, Records: records,
					Bytes: len(l.wbuf), SyncDuration: syncDur,
				})
			}
		}

		l.mu.Lock()
		if !failed {
			l.st.Flushes++
			if err != nil {
				if l.err == nil {
					l.err = fmt.Errorf("durable: shard %d: %w", l.shard, err)
				}
			} else {
				if mode != SyncOff {
					l.st.Fsyncs++
				}
				l.st.Bytes += int64(len(l.wbuf))
				l.fileBytes += int64(len(l.wbuf))
				l.fileLastSeq = last
				if int64(commits) > l.st.MaxCommitsPerFlush {
					l.st.MaxCommitsPerFlush = int64(commits)
				}
				l.durableSeq = last
			}
		}
		l.flushing = false
		l.durable.Broadcast() // durableSeq, err, or flushing moved
		l.mu.Unlock()
	}
}

// close drains the flusher, syncs once (covers SyncOff shutdowns), and
// closes the file. It returns the sticky flush error if the log had
// already failed. Safe to call twice.
func (l *Log) close() error {
	l.mu.Lock()
	wasClosing := l.closing
	l.closing = true
	l.work.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	sticky := l.err
	if l.err == nil {
		l.err = ErrClosed
	}
	l.durable.Broadcast()
	l.mu.Unlock()
	if wasClosing {
		return nil
	}
	var err error
	if sticky != nil {
		err = sticky
	}
	if serr := l.file.Sync(); serr != nil && err == nil {
		err = fmt.Errorf("durable: shard %d: close sync: %w", l.shard, serr)
	}
	if cerr := l.file.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("durable: shard %d: close: %w", l.shard, cerr)
	}
	return err
}

// ticket is a CommitAck bound to a log sequence number.
type ticket struct {
	log *Log
	seq uint64
}

// Wait blocks until the ticket's sequence number is durable or the log
// fails. A batch that became durable before a later failure still
// reports success — its records are on disk.
func (t ticket) Wait() error {
	l := t.log
	l.mu.Lock()
	for l.durableSeq < t.seq && l.err == nil {
		l.durable.Wait()
	}
	ok := l.durableSeq >= t.seq
	err := l.err
	l.mu.Unlock()
	if ok {
		return nil
	}
	return err
}

// errAck is a pre-failed CommitAck.
type errAck struct{ err error }

func (e errAck) Wait() error { return e.err }
