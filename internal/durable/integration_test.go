package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/runtime"
	"partialrollback/internal/sim"
	"partialrollback/internal/wal"
)

// scanSet reads every wal-*.log in dir (read-only, no recovery side
// effects) and returns the latest value per entity — the durable
// state an acknowledged commit promises.
func scanSet(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	type lv struct {
		val int64
		seq uint64
	}
	latest := map[string]lv{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, serr := wal.Scan(strings.NewReader(string(data)))
		if serr != nil {
			t.Fatalf("%s: %v", p, serr)
		}
		for _, r := range recs {
			if r.Name == "" {
				continue
			}
			if old, ok := latest[r.Name]; !ok || r.Seq > old.seq {
				latest[r.Name] = lv{r.Value, r.Seq}
			}
		}
	}
	out := make(map[string]int64, len(latest))
	for n, v := range latest {
		out[n] = v.val
	}
	return out
}

// TestConcurrentCommitDurability: many committers across shards, each
// acknowledged only after its increment is durable. Run with -race;
// the log is then inspected WITHOUT closing the set — everything an
// ack covered must already be in the file.
func TestConcurrentCommitDurability(t *testing.T) {
	const counters, txns = 8, 96
	dir := t.TempDir()
	w := sim.CounterWorkload(counters, txns, 11)
	store := w.NewStore()
	set, _ := mustOpen(t, dir, 2, store, Options{Mode: SyncGroup, Window: time.Millisecond})
	defer set.Close()

	out, err := runtime.Run(store, w.Programs, runtime.Options{
		Strategy:  core.MCS,
		Shards:    2,
		Burst:     8,
		CommitLog: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(out.Stats.Commits) != txns {
		t.Fatalf("commits = %d", out.Stats.Commits)
	}

	durable := scanSet(t, dir)
	var sum int64
	for i := 0; i < counters; i++ {
		name := fmt.Sprintf("e%d", i)
		if durable[name] != store.MustGet(name) {
			t.Errorf("%s: durable %d != memory %d", name, durable[name], store.MustGet(name))
		}
		sum += durable[name]
	}
	if sum != txns {
		t.Fatalf("durable increments = %d, want %d (acknowledged commits lost)", sum, txns)
	}
}

// TestConcurrentCommitDurabilityAlways is the same contract under the
// per-commit fsync discipline.
func TestConcurrentCommitDurabilityAlways(t *testing.T) {
	const counters, txns = 4, 24
	dir := t.TempDir()
	w := sim.CounterWorkload(counters, txns, 5)
	store := w.NewStore()
	set, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	defer set.Close()

	if _, err := runtime.Run(store, w.Programs, runtime.Options{
		Strategy:  core.MCS,
		CommitLog: set,
	}); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range scanSet(t, dir) {
		sum += v
	}
	if sum != txns {
		t.Fatalf("durable increments = %d, want %d", sum, txns)
	}
	if st := set.Stats(); st.Fsyncs < int64(txns) {
		t.Errorf("always mode fsyncs = %d, want >= %d", st.Fsyncs, txns)
	}
}

// TestConcurrentFsyncErrorFailsCommits: when the device dies, no
// committer is told its transaction succeeded — StepToCommit surfaces
// the durability failure instead.
func TestConcurrentFsyncErrorFailsCommits(t *testing.T) {
	w := sim.CounterWorkload(4, 16, 3)
	store := w.NewStore()
	set := &Set{opts: Options{Mode: SyncGroup}}
	set.logs = []*Log{newLog(set, 0, &failFile{syncErr: errors.New("injected: device lost")}, "", 0, 0)}
	defer set.Close()

	_, err := runtime.Run(store, w.Programs, runtime.Options{
		Strategy:  core.MCS,
		CommitLog: set,
	})
	if err == nil {
		t.Fatal("run succeeded with a dead log device")
	}
	if !strings.Contains(err.Error(), "commit not durable") {
		t.Fatalf("error does not name the durability failure: %v", err)
	}
	if !strings.Contains(err.Error(), "device lost") {
		t.Fatalf("root cause lost: %v", err)
	}
}

// TestEngineRecoveryEquivalence: run a contended banking workload
// through the sharded engine with the log attached, close, and replay
// into a fresh initial store — the recovered state must equal the
// engine's final in-memory state, invariant included.
func TestEngineRecoveryEquivalence(t *testing.T) {
	const accounts, transfers = 8, 48
	dir := t.TempDir()
	w := sim.BankingWorkload(accounts, transfers, 100, 7)
	store := w.NewStore()
	set, _ := mustOpen(t, dir, 2, store, Options{Mode: SyncGroup, Window: time.Millisecond})

	if _, err := runtime.Run(store, w.Programs, runtime.Options{
		Strategy:  core.MCS,
		Shards:    2,
		Burst:     4,
		CommitLog: set,
	}); err != nil {
		t.Fatal(err)
	}
	final := store.Snapshot()
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := w.NewStore()
	set2, info := mustOpen(t, dir, 2, fresh, Options{})
	defer set2.Close()
	if info.TornFiles != 0 || len(info.CorruptFiles) != 0 || info.TornCommits != 0 {
		t.Fatalf("clean shutdown recovered damage: %+v", info)
	}
	for name, want := range final {
		if got := fresh.MustGet(name); got != want {
			t.Errorf("%s: recovered %d, final %d", name, got, want)
		}
	}
	if err := fresh.CheckConsistent(); err != nil {
		t.Errorf("recovered store violates invariant: %v", err)
	}
}

// TestUnshardedEngineDurability: the plain core.System path (Set used
// as an unsharded CommitLogger) also waits for durability.
func TestUnshardedEngineDurability(t *testing.T) {
	dir := t.TempDir()
	w := sim.CounterWorkload(4, 20, 9)
	store := w.NewStore()
	set, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncOff})
	if _, err := runtime.Run(store, w.Programs, runtime.Options{
		Strategy:  core.SDG,
		CommitLog: set,
	}); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := entity.NewUniformStore("e", 4, 0)
	set2, _ := mustOpen(t, dir, 1, fresh, Options{})
	defer set2.Close()
	var sum int64
	for i := 0; i < 4; i++ {
		sum += fresh.MustGet(fmt.Sprintf("e%d", i))
	}
	if sum != 20 {
		t.Fatalf("recovered increments = %d, want 20", sum)
	}
}
