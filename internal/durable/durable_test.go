package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/wal"
)

func writeLog(t *testing.T, path string, recs ...wal.Record) {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = wal.AppendRecord(buf, r.Name, r.Value, r.Seq)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T, dir string, shards int, store *entity.Store, opts Options) (*Set, *RecoveryInfo) {
	t.Helper()
	s, info, err := Open(dir, shards, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

func commit(writes ...core.CommitWrite) []core.CommitWrite { return writes }

func w(name string, val int64) core.CommitWrite { return core.CommitWrite{Name: name, Val: val} }

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
	}{{"group", SyncGroup}, {"always", SyncAlways}, {"off", SyncOff}} {
		got, err := ParseSyncMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestCommitDurableAndRecovered: the basic contract — once Wait
// returns, a reopened set sees the write.
func TestCommitDurableAndRecovered(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 2, 0)
	s, info := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if info.Files != 0 || info.Records != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	if err := s.LogCommit(commit(w("e0", 41))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 42), w("e1", 7))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := entity.NewUniformStore("e", 2, 0)
	s2, info2 := mustOpen(t, dir, 1, store2, Options{})
	defer s2.Close()
	// 1 singleton + 1 marker + 2 members.
	if info2.Records != 4 || info2.Applied != 2 {
		t.Fatalf("recovery = %+v", info2)
	}
	if v := store2.MustGet("e0"); v != 42 {
		t.Errorf("e0 = %d, want 42", v)
	}
	if v := store2.MustGet("e1"); v != 7 {
		t.Errorf("e1 = %d, want 7", v)
	}
}

// TestGroupCommitBatchesFsyncs: commits that arrive inside the window
// share one fsync.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 8, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncGroup, Window: 50 * time.Millisecond})
	// The first commit opens the window; the rest join while the
	// flusher sleeps.
	acks := make([]core.CommitAck, 8)
	for i := range acks {
		acks[i] = s.LogCommit(commit(w(fmt.Sprintf("e%d", i), int64(i))))
	}
	for i, a := range acks {
		if err := a.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Commits != 8 {
		t.Fatalf("commits = %d", st.Commits)
	}
	if st.Fsyncs >= 8 {
		t.Errorf("group commit did not batch: %d fsyncs for 8 commits", st.Fsyncs)
	}
	if st.MaxCommitsPerFlush < 2 {
		t.Errorf("max group size = %d, want >= 2", st.MaxCommitsPerFlush)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncAlwaysOneFsyncPerCommit: even commits enqueued together get
// their own fsync under SyncAlways.
func TestSyncAlwaysOneFsyncPerCommit(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 4, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	var acks []core.CommitAck
	for i := 0; i < 4; i++ {
		acks = append(acks, s.LogCommit(commit(w(fmt.Sprintf("e%d", i), 1))))
	}
	for _, a := range acks {
		if err := a.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Fsyncs != 4 || st.MaxCommitsPerFlush != 1 {
		t.Errorf("always mode: fsyncs=%d maxGroup=%d, want 4 and 1", st.Fsyncs, st.MaxCommitsPerFlush)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncOffStillRecoversAfterClose: no fsyncs during the run, but
// Close syncs once and the data is all there.
func TestSyncOffStillRecoversAfterClose(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 1, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncOff})
	for i := 1; i <= 10; i++ {
		if err := s.LogCommit(commit(w("e0", int64(i)))).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Fsyncs != 0 || st.Flushes == 0 {
		t.Errorf("off mode: fsyncs=%d flushes=%d", st.Fsyncs, st.Flushes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := entity.NewUniformStore("e", 1, 0)
	s2, _ := mustOpen(t, dir, 1, store2, Options{})
	defer s2.Close()
	if v := store2.MustGet("e0"); v != 10 {
		t.Errorf("e0 = %d, want 10", v)
	}
}

// TestReadOnlyCommitWaitsForTail: an empty write-set still gets a
// ticket for the current tail, so reads never out-run durability.
func TestReadOnlyCommitWaitsForTail(t *testing.T) {
	gate := make(chan struct{})
	f := &gateFile{gate: gate}
	s := &Set{opts: Options{Mode: SyncAlways}}
	s.logs = []*Log{newLog(s, 0, f, "", 0, 0)}

	wAck := s.LogCommit(commit(w("e0", 1)))
	rAck := s.LogCommit(nil)
	done := make(chan error, 2)
	go func() { done <- wAck.Wait() }()
	go func() { done <- rAck.Wait() }()
	select {
	case err := <-done:
		t.Fatalf("ack returned before fsync: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// A read-only commit against an idle (fully durable) log returns
	// immediately.
	if err := s.LogCommit(nil).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInstallRidesNextFlush: LogInstall has no ticket, but a later
// commit's ticket covers it and recovery sees it.
func TestInstallRidesNextFlush(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 2, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	s.LogInstall(w("e0", 99))
	if err := s.LogCommit(commit(w("e1", 1))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := entity.NewUniformStore("e", 2, 0)
	s2, _ := mustOpen(t, dir, 1, store2, Options{})
	defer s2.Close()
	if v := store2.MustGet("e0"); v != 99 {
		t.Errorf("unlock install lost: e0 = %d", v)
	}
}

// TestWriteErrorFailsCommitAndSticks: a failed append fails that
// commit's ack and every later one; Close reports it.
func TestWriteErrorFailsCommitAndSticks(t *testing.T) {
	f := &failFile{writeErr: errors.New("injected: disk full")}
	s := &Set{opts: Options{Mode: SyncAlways}}
	s.logs = []*Log{newLog(s, 0, f, "", 0, 0)}

	err := s.LogCommit(commit(w("e0", 1))).Wait()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("ack err = %v", err)
	}
	if err := s.LogCommit(commit(w("e0", 2))).Wait(); err == nil {
		t.Fatal("commit after failure succeeded")
	}
	if err := s.LogCommit(nil).Wait(); err == nil {
		t.Fatal("read-only ack after failure succeeded")
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want sticky error", err)
	}
}

// TestFsyncErrorFailsCommit: write succeeds, fsync fails — the commit
// must not be acknowledged.
func TestFsyncErrorFailsCommit(t *testing.T) {
	f := &failFile{syncErr: errors.New("injected: fsync lost")}
	s := &Set{opts: Options{Mode: SyncGroup}}
	s.logs = []*Log{newLog(s, 0, f, "", 0, 0)}
	err := s.LogCommit(commit(w("e0", 1))).Wait()
	if err == nil || !strings.Contains(err.Error(), "fsync lost") {
		t.Fatalf("ack err = %v", err)
	}
	if !strings.Contains(err.Error(), "durable: shard 0") {
		t.Fatalf("error not attributed to shard: %v", err)
	}
	s.Close()
}

// TestCommitAfterCloseFails: appends after Close are refused, and
// already-durable tickets keep succeeding.
func TestCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 1, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncOff})
	ack := s.LogCommit(commit(w("e0", 1)))
	if err := ack.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 2))).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close = %v, want ErrClosed", err)
	}
	if err := ack.Wait(); err != nil {
		t.Errorf("durable ticket failed after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestBarrier: Barrier returns only after everything already enqueued
// is durable.
func TestBarrier(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 4, 0)
	s, _ := mustOpen(t, dir, 2, store, Options{Mode: SyncGroup, Window: time.Millisecond})
	for i := 0; i < 4; i++ {
		s.ForShard(i % 2).LogCommit(commit(w(fmt.Sprintf("e%d", i), int64(i))))
	}
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Commits != 4 || st.Fsyncs == 0 {
		t.Fatalf("after barrier: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTornTail: a file ending mid-record is truncated to its
// clean prefix, byte-exactly, and appending resumes past the gap.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	for i := 1; i <= 5; i++ {
		buf = wal.AppendRecord(buf, "e0", int64(i), uint64(i))
	}
	cleanLen := len(buf) - (24 + len("e0")) // last record torn
	torn := append(append([]byte(nil), buf[:cleanLen]...), buf[cleanLen:len(buf)-7]...)
	if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	store := entity.NewUniformStore("e", 1, 0)
	s, info := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if info.TornFiles != 1 || info.Records != 4 {
		t.Fatalf("recovery = %+v", info)
	}
	if info.TruncatedBytes != int64(len(torn)-cleanLen) {
		t.Errorf("truncated %d bytes, want %d", info.TruncatedBytes, len(torn)-cleanLen)
	}
	if v := store.MustGet("e0"); v != 4 {
		t.Errorf("e0 = %d, want 4 (value before the torn record)", v)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal-0.log")); err != nil || st.Size() != int64(cleanLen) {
		t.Errorf("file not truncated to clean prefix: %v %d != %d", err, st.Size(), cleanLen)
	}
	if info.MaxSeq != 4 {
		t.Errorf("MaxSeq = %d", info.MaxSeq)
	}
	// Appending continues after the recovered sequence.
	if err := s.LogCommit(commit(w("e0", 50))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := entity.NewUniformStore("e", 1, 0)
	s2, info2 := mustOpen(t, dir, 1, store2, Options{})
	defer s2.Close()
	if info2.TornFiles != 0 || store2.MustGet("e0") != 50 {
		t.Fatalf("second recovery: %+v e0=%d", info2, store2.MustGet("e0"))
	}
}

// TestRecoverTornCommitGroup: a multi-record commit missing its tail
// is dropped whole — no half-applied commits — and the file is
// truncated back to the last complete commit.
func TestRecoverTornCommitGroup(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = wal.AppendRecord(buf, "a", 1, 1) // complete singleton commit
	cleanLen := len(buf)
	buf = wal.AppendRecord(buf, "", 2, 2)   // marker: 2 members follow...
	buf = wal.AppendRecord(buf, "a", 10, 3) // ...but only one survived
	if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s, info := mustOpen(t, dir, 1, store, Options{})
	defer s.Close()
	if info.TornCommits != 1 {
		t.Fatalf("recovery = %+v", info)
	}
	if v := store.MustGet("a"); v != 1 {
		t.Errorf("a = %d, want 1 (torn commit must not half-apply)", v)
	}
	if v := store.MustGet("b"); v != 0 {
		t.Errorf("b = %d, want 0", v)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal-0.log")); err != nil || st.Size() != int64(cleanLen) {
		t.Errorf("file not truncated to last whole commit: %v", err)
	}
}

// TestRecoverCorruptMidFile: a bit flip before the tail is classified
// as corruption, not an ordinary torn tail.
func TestRecoverCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = wal.AppendRecord(buf, "e0", 1, 1)
	cut := len(buf)
	buf = wal.AppendRecord(buf, "e0", 2, 2)
	buf = wal.AppendRecord(buf, "e0", 3, 3)
	buf[cut+10] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	store := entity.NewUniformStore("e", 1, 0)
	s, info := mustOpen(t, dir, 1, store, Options{})
	defer s.Close()
	if len(info.CorruptFiles) != 1 || info.CorruptFiles[0] != "wal-0.log" {
		t.Fatalf("corruption not classified: %+v", info)
	}
	if v := store.MustGet("e0"); v != 1 {
		t.Errorf("e0 = %d, want 1", v)
	}
}

// TestRecoverMergesLatestAcrossFiles: per-entity, the highest sequence
// number wins regardless of which shard's file it sits in.
func TestRecoverMergesLatestAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, filepath.Join(dir, "wal-0.log"),
		wal.Record{Name: "x", Value: 1, Seq: 1},
		wal.Record{Name: "y", Value: 5, Seq: 4})
	writeLog(t, filepath.Join(dir, "wal-1.log"),
		wal.Record{Name: "x", Value: 9, Seq: 3})

	store := entity.NewStore(map[string]int64{"x": 0, "y": 0})
	s, info := mustOpen(t, dir, 2, store, Options{})
	defer s.Close()
	if info.Files != 2 || info.Records != 3 || info.MaxSeq != 4 {
		t.Fatalf("recovery = %+v", info)
	}
	if v := store.MustGet("x"); v != 9 {
		t.Errorf("x = %d, want 9 (seq 3 beats seq 1)", v)
	}
	if v := store.MustGet("y"); v != 5 {
		t.Errorf("y = %d", v)
	}
}

// TestRecoverShardCountChange: logs written by a 2-shard server are
// fully recovered by a 1-shard reopen (and vice versa).
func TestRecoverShardCountChange(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 4, 0)
	s, _ := mustOpen(t, dir, 2, store, Options{Mode: SyncOff})
	for i := 0; i < 4; i++ {
		if err := s.ForShard(i % 2).LogCommit(commit(w(fmt.Sprintf("e%d", i), int64(100 + i)))).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := entity.NewUniformStore("e", 4, 0)
	s2, info := mustOpen(t, dir, 1, store2, Options{})
	defer s2.Close()
	if info.Files != 2 {
		t.Fatalf("recovery = %+v", info)
	}
	for i := 0; i < 4; i++ {
		if v := store2.MustGet(fmt.Sprintf("e%d", i)); v != int64(100+i) {
			t.Errorf("e%d = %d", i, v)
		}
	}
}

// TestRecoveryDefinesUnknownEntities: replay of a log mentioning an
// entity the fresh store lacks defines it.
func TestRecoveryDefinesUnknownEntities(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, filepath.Join(dir, "wal-0.log"),
		wal.Record{Name: "ghost", Value: 13, Seq: 1})
	store := entity.NewUniformStore("e", 1, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{})
	defer s.Close()
	if v, ok := store.Get("ghost"); !ok || v != 13 {
		t.Fatalf("ghost = %d, %v", v, ok)
	}
}

// gateFile blocks every Sync until the gate closes.
type gateFile struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	gate chan struct{}
}

func (f *gateFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.buf.Write(p)
}
func (f *gateFile) Sync() error  { <-f.gate; return nil }
func (f *gateFile) Close() error { return nil }

// failFile fails writes and/or syncs with injected errors.
type failFile struct {
	mu       sync.Mutex
	buf      bytes.Buffer
	writeErr error
	syncErr  error
}

func (f *failFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return f.buf.Write(p)
}

func (f *failFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncErr
}
func (f *failFile) Close() error { return nil }
