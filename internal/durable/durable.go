// Package durable turns the standalone internal/wal record format into
// the engine's durability layer: per-shard redo logs fed by the
// core.CommitLogger hook, a group-commit scheduler that batches
// concurrent commits into one append+fsync, and a recovery path that
// replays the logs into the entity store at startup, truncating any
// torn tail.
//
// The paper's deferred-update discipline (§4) is what makes the layer
// this small: global values change only when an entity is unlocked or
// its transaction commits, so the log is redo-only — no undo records,
// no rollback logging, and partial rollback never touches the log at
// all (uncommitted work lives in per-transaction copies that die with
// the process).
//
// # Log set layout
//
// A Set owns one log file per shard, wal-<k>.log, all drawing sequence
// numbers from one shared counter. Within a file sequence numbers are
// strictly increasing but gapped (other shards' records claim the
// missing numbers); recovery scans every file and applies the
// highest-sequence record per entity. That merge is correct because a
// transaction that writes an entity after another one committed it
// must first acquire the entity's lock, which happens strictly after
// the previous holder's commit was logged (the log append runs under
// the shard's engine mutex, and cross-shard entity migration only
// happens after the owning shard's commit step returns) — so the later
// write always carries the larger sequence number, on whichever shard
// it lands.
//
// Commits spanning several entities are preceded by a group marker
// record (empty name, value = member count) so recovery never
// half-applies a commit: an incomplete trailing group is truncated
// away with the rest of the damaged tail. Single-record commits and
// shrinking-phase unlock installs are atomic on their own and carry no
// marker — the latter matches the paper's deferred-update discipline,
// where an unlocked value is globally visible (and hence individually
// durable) before its transaction commits.
//
// # Group commit
//
// Appends only enqueue encoded records (the engine mutex is never held
// across IO); each log's flusher goroutine writes and fsyncs batches.
// Commit acknowledgements wait on a ticket for their batch — exactly
// the storage-axis twin of the server's coalesced frame writes: many
// logical completions, one syscall.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/wal"
)

// SyncMode selects when log appends are fsynced.
type SyncMode int

const (
	// SyncGroup batches concurrent commits into one fsync: the flusher
	// waits up to Options.Window for more commits to join (flushing
	// early at Options.MaxBatch), then makes the whole batch durable
	// with a single write+fsync. Commits are acknowledged only after
	// their batch's fsync — durability is never traded away, only
	// latency.
	SyncGroup SyncMode = iota
	// SyncAlways gives every write-commit its own write+fsync — the
	// classical forced-log discipline, and the baseline group commit is
	// measured against.
	SyncAlways
	// SyncOff appends without ever fsyncing (the OS flushes the page
	// cache at leisure). Commits survive a process kill but not a host
	// crash. Close still syncs once for a clean shutdown.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses the -fsync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync mode %q (want always, group or off)", s)
}

// ErrClosed is returned by tickets whose log was closed before their
// batch became durable, and by appends after Close.
var ErrClosed = errors.New("durable: log closed")

// Options tunes a Set.
type Options struct {
	// Mode selects the fsync discipline. Default SyncGroup.
	Mode SyncMode
	// Window is the group-commit collection delay: how long a flush
	// waits for more commits to join the batch. Only SyncGroup uses it.
	// 0 means the default (2ms); negative disables the wait (batching
	// then only captures commits that queued while the previous fsync
	// was in flight).
	Window time.Duration
	// MaxBatch flushes a group early once this many write-commits are
	// pending. Default 64.
	MaxBatch int
	// SyncDelay adds artificial latency after every fsync, modeling
	// slower stable storage (a classical disk's ~2-10ms barrier) on
	// hardware whose fsync is too fast to differentiate the sync
	// disciplines. Benchmarks only (scripts/bench_e19.sh); zero in
	// production.
	SyncDelay time.Duration
	// OnFlush, when non-nil, is called after every durable batch,
	// outside all locks (metrics export).
	OnFlush func(FlushInfo)
}

// FlushInfo describes one durable flush batch.
type FlushInfo struct {
	// Shard is the log's index within its Set.
	Shard int
	// Commits is the number of write-commits the batch carried (its
	// group-commit size; shrinking-phase unlock installs count zero).
	Commits int
	// Records and Bytes are the batch's record count and encoded size.
	Records int
	Bytes   int
	// SyncDuration is the fsync's wall time (zero under SyncOff).
	SyncDuration time.Duration
}

// Stats aggregates a Set's (or one Log's) counters.
type Stats struct {
	// Appends counts log records encoded and queued.
	Appends int64
	// Commits counts write-commits logged (LogCommit calls with a
	// non-empty write-set).
	Commits int64
	// Flushes counts write batches handed to the file; Fsyncs counts
	// the ones followed by an fsync (equal except under SyncOff).
	Flushes int64
	Fsyncs  int64
	// Bytes counts durably written log bytes.
	Bytes int64
	// MaxCommitsPerFlush is the largest group-commit batch observed.
	MaxCommitsPerFlush int64
}

func (a Stats) add(b Stats) Stats {
	a.Appends += b.Appends
	a.Commits += b.Commits
	a.Flushes += b.Flushes
	a.Fsyncs += b.Fsyncs
	a.Bytes += b.Bytes
	if b.MaxCommitsPerFlush > a.MaxCommitsPerFlush {
		a.MaxCommitsPerFlush = b.MaxCommitsPerFlush
	}
	return a
}

// RecoveryInfo reports what Open found and replayed.
type RecoveryInfo struct {
	// Files and Records count log files scanned and records decoded.
	Files   int
	Records int
	// Applied counts entities whose recovered value was installed into
	// the store (one per distinct entity, not per record).
	Applied int
	// MaxSeq is the highest sequence number recovered; appending
	// resumes after it.
	MaxSeq uint64
	// TornFiles counts files whose tail ended mid-record — the expected
	// shape after a crash; each was truncated to its clean prefix.
	// TruncatedBytes is the total damage removed.
	TornFiles      int
	TruncatedBytes int64
	// TornCommits counts multi-record commits dropped because the crash
	// cut off part of their group — the records that did survive are
	// truncated away too rather than half-applying the commit.
	TornCommits int
	// CorruptFiles names files with checksum or framing damage before
	// the tail — NOT expected after a clean crash; they were truncated
	// to their clean prefix too, but callers should log this loudly.
	CorruptFiles []string
	// CheckpointSeq, CheckpointFile, and CheckpointEntities describe
	// the checkpoint recovery loaded as its base, if any: the snapshot
	// was applied first and only records with sequence numbers beyond
	// CheckpointSeq were replayed. CheckpointFile is empty when no
	// valid checkpoint existed (full replay).
	CheckpointSeq      uint64
	CheckpointFile     string
	CheckpointEntities int
	// SkippedCheckpoints names checkpoint files that failed validation
	// and were passed over for an older valid one (or full replay).
	// With the crash-safe checkpoint write discipline these indicate
	// storage damage, not an ordinary crash — log them loudly.
	SkippedCheckpoints []string
	// TailRecords counts the entity records actually replayed — those
	// past the checkpoint frontier. Without a checkpoint this is every
	// entity record in the log set.
	TailRecords int
	// Duration is recovery's wall time: checkpoint load + log scan +
	// replay into the store.
	Duration time.Duration
}

// Set is a per-shard collection of redo logs sharing one sequence
// counter. It implements core.ShardedCommitLogger: pass it as
// core.Config.CommitLog (or server.Config.Durable) and each shard
// appends to its own log with its own group-commit queue.
type Set struct {
	dir  string
	opts Options
	gseq atomic.Uint64
	logs []*Log

	// smu guards sealed — the rotation-retired, immutable segments
	// still on disk awaiting checkpoint coverage (internal/checkpoint
	// deletes each once a retained checkpoint's frontier reaches its
	// MaxSeq).
	smu    sync.Mutex
	sealed []checkpoint.Segment
}

var _ core.ShardedCommitLogger = (*Set)(nil)
var _ checkpoint.Source = (*Set)(nil)

// Open creates (or reopens) the log set in dir with one log per shard,
// first recovering existing state into store. Recovery is
// checkpoint-aware: the newest valid checkpoint (if any) is loaded as
// the base and only log records with sequence numbers beyond its
// frontier are replayed — for every such entity, the highest-sequence
// value is installed (defining the entity if the store does not know
// it). Damaged file tails are truncated so appending resumes from a
// clean prefix; a torn checkpoint is skipped for an older valid one,
// falling back to full replay when none exists. The returned
// RecoveryInfo describes what was found; inspect CorruptFiles and
// SkippedCheckpoints for damage beyond an ordinary torn tail.
func Open(dir string, shards int, store *entity.Store, opts Options) (*Set, *RecoveryInfo, error) {
	start := time.Now()
	if shards < 1 {
		shards = 1
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.Window == 0 {
		opts.Window = 2 * time.Millisecond
	} else if opts.Window < 0 {
		opts.Window = 0
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	// The directory entry itself must survive a crash on first run.
	if parent := filepath.Dir(filepath.Clean(dir)); parent != "" {
		if err := wal.SyncDir(parent); err != nil {
			return nil, nil, err
		}
	}

	info := &RecoveryInfo{}

	// A crash between a checkpoint temp write and its rename leaves a
	// stale .tmp behind; it was never part of the durable state.
	if _, err := checkpoint.RemoveTemps(dir); err != nil {
		return nil, nil, err
	}

	// Checkpoint base: apply the snapshot first, then replay only the
	// tail behind its frontier. Entries were sorted by name at write
	// time, so intern-ID assignment for new names stays deterministic.
	ck, ckPath, skipped, err := checkpoint.LoadLatest(dir)
	if err != nil {
		return nil, nil, err
	}
	info.SkippedCheckpoints = skipped
	var frontier uint64
	if ck != nil {
		frontier = ck.Frontier
		info.CheckpointSeq = ck.Frontier
		info.CheckpointFile = filepath.Base(ckPath)
		info.CheckpointEntities = len(ck.Entries)
		info.MaxSeq = frontier
		for _, e := range ck.Entries {
			if store.Exists(e.Name) {
				if err := store.Install(e.Name, e.Val); err != nil {
					return nil, nil, fmt.Errorf("durable: checkpoint %q: %w", e.Name, err)
				}
			} else {
				store.Define(e.Name, e.Val)
			}
		}
	}

	// The glob covers both active segments (wal-<k>.log) and sealed
	// ones (wal-<k>.sealed-<maxseq>.log).
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	sort.Strings(paths)
	type latestVal struct {
		val int64
		seq uint64
	}
	type activeState struct {
		bytes   int64
		lastSeq uint64
	}
	latest := map[string]latestVal{}
	actives := map[int]activeState{}
	var sealedSegs []checkpoint.Segment
	for _, path := range paths {
		recs, err := recoverFile(path, info)
		if err != nil {
			return nil, nil, err
		}
		var fileMax uint64
		for _, r := range recs {
			if r.Seq > info.MaxSeq {
				info.MaxSeq = r.Seq
			}
			if r.Seq > fileMax {
				fileMax = r.Seq
			}
			if r.Name == "" {
				continue // commit-group marker, not an entity
			}
			if r.Seq <= frontier {
				continue // already reflected in the checkpoint base
			}
			info.TailRecords++
			if lv, ok := latest[r.Name]; !ok || r.Seq > lv.seq {
				latest[r.Name] = latestVal{val: r.Value, seq: r.Seq}
			}
		}
		base := filepath.Base(path)
		if shard, maxSeq, ok := parseSealedName(base); ok {
			var size int64
			if st, err := os.Stat(path); err == nil {
				size = st.Size()
			}
			sealedSegs = append(sealedSegs, checkpoint.Segment{
				Shard: shard, Path: path, MaxSeq: maxSeq, Bytes: size,
			})
		} else if shard, ok := parseActiveName(base); ok {
			var size int64
			if st, err := os.Stat(path); err == nil {
				size = st.Size() // recoverFile already truncated any damage
			}
			actives[shard] = activeState{bytes: size, lastSeq: fileMax}
		}
	}
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic intern-ID assignment for new names
	for _, n := range names {
		lv := latest[n]
		if store.Exists(n) {
			if err := store.Install(n, lv.val); err != nil {
				return nil, nil, fmt.Errorf("durable: replay %q: %w", n, err)
			}
		} else {
			store.Define(n, lv.val)
		}
		info.Applied++
	}

	s := &Set{dir: dir, opts: opts, sealed: sealedSegs}
	s.gseq.Store(info.MaxSeq)
	for k := 0; k < shards; k++ {
		p := filepath.Join(dir, fmt.Sprintf("wal-%d.log", k))
		f, err := wal.Create(p)
		if err != nil {
			for _, l := range s.logs {
				l.close()
			}
			return nil, nil, err
		}
		a := actives[k]
		s.logs = append(s.logs, newLog(s, k, f, p, a.bytes, a.lastSeq))
	}
	info.Duration = time.Since(start)
	return s, info, nil
}

// parseActiveName recognises an active segment name, wal-<k>.log.
func parseActiveName(base string) (shard int, ok bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".log")
	if len(mid)+8 != len(base) {
		return 0, false
	}
	k, err := strconv.Atoi(mid)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// parseSealedName recognises a sealed segment name,
// wal-<k>.sealed-<maxseq>.log (maxseq zero-padded at seal time so the
// directory listing sorts chronologically per shard).
func parseSealedName(base string) (shard int, maxSeq uint64, ok bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".log")
	if len(mid)+8 != len(base) {
		return 0, 0, false
	}
	shardStr, seqStr, found := strings.Cut(mid, ".sealed-")
	if !found {
		return 0, 0, false
	}
	k, err := strconv.Atoi(shardStr)
	if err != nil || k < 0 {
		return 0, 0, false
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return k, seq, true
}

// recoverFile scans one log, truncating any damaged tail in place so
// appending can resume, and folds what it found into info. Damage is
// either a torn/corrupt record (wal.Scan stops there) or a torn commit
// group: a marker promising n member records of which the crash
// persisted fewer. Both truncate to the longest prefix of whole
// commits, so a commit is recovered entirely or not at all.
func recoverFile(path string, info *RecoveryInfo) ([]wal.Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("durable: recover: %w", err)
	}
	defer f.Close()
	recs, goodOff, serr := wal.Scan(f)
	info.Files++

	// Commit-group pass: walk the clean prefix, advancing over whole
	// groups; an incomplete trailing group shortens the prefix to the
	// marker's own byte offset (records are self-sizing: 24+len(name)).
	valid := len(recs)
	for i := 0; i < len(recs); {
		if recs[i].Name == "" {
			n := int(recs[i].Value)
			if n < 1 || i+1+n > len(recs) {
				valid = i
				break
			}
			i += 1 + n
		} else {
			i++
		}
	}
	tornCommit := valid < len(recs)
	if tornCommit {
		info.TornCommits++
		var off int64
		for _, r := range recs[:valid] {
			off += int64(24 + len(r.Name))
		}
		goodOff = off
		recs = recs[:valid]
	}
	info.Records += len(recs)

	if serr != nil || tornCommit {
		st, err := f.Stat()
		if err != nil {
			return nil, fmt.Errorf("durable: recover %s: %w", path, err)
		}
		info.TruncatedBytes += st.Size() - goodOff
		switch {
		case serr != nil && errors.Is(serr, wal.ErrCorrupt):
			info.CorruptFiles = append(info.CorruptFiles, filepath.Base(path))
		case serr != nil:
			info.TornFiles++
		}
		if err := f.Truncate(goodOff); err != nil {
			return nil, fmt.Errorf("durable: truncate %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("durable: truncate %s: %w", path, err)
		}
		if err := wal.SyncDir(filepath.Dir(path)); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// ForShard returns shard k's logger (modulo the set size, so an engine
// configured with more shards than the set has logs still works — the
// extra shards share).
func (s *Set) ForShard(k int) core.CommitLogger {
	return s.logs[k%len(s.logs)]
}

// LogInstall implements core.CommitLogger for the unsharded engine
// (everything lands on log 0).
func (s *Set) LogInstall(w core.CommitWrite) { s.logs[0].LogInstall(w) }

// LogCommit implements core.CommitLogger for the unsharded engine.
func (s *Set) LogCommit(writes []core.CommitWrite) core.CommitAck {
	return s.logs[0].LogCommit(writes)
}

// Barrier blocks until everything appended so far on every log is
// durable — the big hammer for paths that learn of a commit without
// holding its ticket (e.g. an abort that raced a commit).
func (s *Set) Barrier() error {
	var first error
	for _, l := range s.logs {
		if err := l.barrier(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes every log's remaining batches, syncs once (so SyncOff
// shutdowns are still durable), and closes the files. Tickets that
// were already durable keep succeeding; anything else fails ErrClosed.
func (s *Set) Close() error {
	var first error
	for _, l := range s.logs {
		if err := l.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats sums the per-log counters.
func (s *Set) Stats() Stats {
	var out Stats
	for _, l := range s.logs {
		out = out.add(l.Stats())
	}
	return out
}

// Dir returns the log directory.
func (s *Set) Dir() string { return s.dir }

// Logs returns the number of member logs.
func (s *Set) Logs() int { return len(s.logs) }

// Frontier returns the current global sequence number: every record
// appended so far, on any log, carries a sequence number <= the
// returned value. Read under an engine Quiesce (core.Quiescer), the
// installed store state corresponds exactly to the log prefix up to
// the frontier — installs and sequence assignment both happen under
// the engine mutex — which is what makes a quiesced snapshot plus this
// number a valid checkpoint.
func (s *Set) Frontier() uint64 { return s.gseq.Load() }

// AppendedBytes returns the total log bytes durably written by this
// process — the checkpoint byte-trigger's input. Recovery-replayed
// bytes are not included; the trigger measures new growth.
func (s *Set) AppendedBytes() int64 { return s.Stats().Bytes }

// Rotate seals every shard's active segment that has records in it
// (sync + close + rename to wal-<k>.sealed-<maxseq>.log + fresh active
// file) and registers the sealed segments for later compaction.
// Appends continue concurrently — they queue while their shard
// rotates. Shards whose active file is empty are skipped.
func (s *Set) Rotate() error {
	var first error
	for _, l := range s.logs {
		seg, rotated, err := l.rotate()
		if err != nil && first == nil {
			first = err
		}
		if rotated {
			s.smu.Lock()
			s.sealed = append(s.sealed, seg)
			s.smu.Unlock()
		}
	}
	return first
}

// SealedSegments returns the sealed segments currently on disk, in
// the order they were discovered or rotated (oldest first per shard).
func (s *Set) SealedSegments() []checkpoint.Segment {
	s.smu.Lock()
	defer s.smu.Unlock()
	return append([]checkpoint.Segment(nil), s.sealed...)
}

// RemoveSealed deletes one sealed segment from disk and from the
// set's bookkeeping. Only safe once a retained checkpoint's frontier
// has reached seg.MaxSeq — the checkpointer enforces that against the
// OLDEST retained checkpoint, so even recovery that falls back past
// the newest checkpoint finds every record it needs. The directory is
// fsynced so bounded disk usage survives a crash (a resurrected
// segment would merely be replayed and re-deleted, but the bound is
// part of the contract).
func (s *Set) RemoveSealed(seg checkpoint.Segment) error {
	if err := os.Remove(seg.Path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: remove segment: %w", err)
	}
	if err := wal.SyncDir(s.dir); err != nil {
		return err
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	for i := range s.sealed {
		if s.sealed[i].Path == seg.Path {
			s.sealed = append(s.sealed[:i], s.sealed[i+1:]...)
			break
		}
	}
	return nil
}

// ShardLogStatus is one shard log's accounting, as served by the
// /debug/wal admin endpoint.
type ShardLogStatus struct {
	Shard int `json:"shard"`
	// ActiveBytes and ActiveLastSeq cover the active segment file:
	// durably written size and the highest sequence number flushed to
	// it (zero right after a rotation).
	ActiveBytes   int64  `json:"activeBytes"`
	ActiveLastSeq uint64 `json:"activeLastSeq"`
	// DurableSeq is the highest sequence number fsynced on this log.
	DurableSeq uint64 `json:"durableSeq"`
	// PendingRecords counts records queued but not yet flushed.
	PendingRecords int `json:"pendingRecords"`
	// SealedSegments and SealedBytes cover this shard's sealed,
	// not-yet-compacted segments.
	SealedSegments int   `json:"sealedSegments"`
	SealedBytes    int64 `json:"sealedBytes"`
}

// ShardStatus reports per-shard log accounting for the admin surface.
func (s *Set) ShardStatus() []ShardLogStatus {
	out := make([]ShardLogStatus, len(s.logs))
	for k, l := range s.logs {
		out[k] = l.status()
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	for _, seg := range s.sealed {
		if seg.Shard >= 0 && seg.Shard < len(out) {
			out[seg.Shard].SealedSegments++
			out[seg.Shard].SealedBytes += seg.Bytes
		}
	}
	return out
}
