package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/entity"
	"partialrollback/internal/wal"
)

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

// TestRotationSealsAndRecovers: rotating seals the active segment
// under a new name, appends continue into a fresh file, and recovery
// scans both.
func TestRotationSealsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 2, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if err := s.LogCommit(commit(w("e0", 1), w("e1", 2))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	segs := s.SealedSegments()
	if len(segs) != 1 {
		t.Fatalf("sealed segments = %d, want 1", len(segs))
	}
	// marker(seq 1) + two members (2, 3) were sealed.
	if segs[0].MaxSeq != 3 || segs[0].Shard != 0 {
		t.Fatalf("sealed segment = %+v", segs[0])
	}
	// Rotating an empty active file is a no-op.
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.SealedSegments()); n != 1 {
		t.Fatalf("empty rotation sealed something: %d segments", n)
	}
	if err := s.LogCommit(commit(w("e0", 9))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	names := dirNames(t, dir)
	var sealed, active int
	for _, n := range names {
		if _, _, ok := parseSealedName(n); ok {
			sealed++
		} else if _, ok := parseActiveName(n); ok {
			active++
		}
	}
	if sealed != 1 || active != 1 {
		t.Fatalf("dir = %v, want 1 sealed + 1 active", names)
	}

	fresh := entity.NewUniformStore("e", 2, 0)
	s2, info := mustOpen(t, dir, 1, fresh, Options{})
	defer s2.Close()
	if v := fresh.MustGet("e0"); v != 9 {
		t.Errorf("e0 = %d, want 9", v)
	}
	if v := fresh.MustGet("e1"); v != 2 {
		t.Errorf("e1 = %d, want 2", v)
	}
	if info.MaxSeq != 4 {
		t.Errorf("MaxSeq = %d, want 4", info.MaxSeq)
	}
	if got := s2.SealedSegments(); len(got) != 1 || got[0].MaxSeq != 3 {
		t.Errorf("reopened sealed segments = %+v", got)
	}
}

// TestCheckpointTailReplay: recovery loads the checkpoint base and
// replays only records past its frontier.
func TestCheckpointTailReplay(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 2, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if err := s.LogCommit(commit(w("e0", 5))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e1", 6))).Wait(); err != nil {
		t.Fatal(err)
	}
	frontier := s.Frontier()
	if _, _, err := checkpoint.Write(dir, checkpoint.State{
		Frontier: frontier,
		Entries:  []checkpoint.Entry{{Name: "e0", Val: 5}, {Name: "e1", Val: 6}},
	}, checkpoint.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 7))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := entity.NewUniformStore("e", 2, 0)
	s2, info := mustOpen(t, dir, 1, fresh, Options{})
	defer s2.Close()
	if info.CheckpointSeq != frontier || info.CheckpointFile != checkpoint.FileName(frontier) {
		t.Fatalf("checkpoint base = %q seq %d, want %q seq %d",
			info.CheckpointFile, info.CheckpointSeq, checkpoint.FileName(frontier), frontier)
	}
	if info.CheckpointEntities != 2 {
		t.Errorf("CheckpointEntities = %d, want 2", info.CheckpointEntities)
	}
	if info.TailRecords != 1 {
		t.Errorf("TailRecords = %d, want 1 (only the post-checkpoint commit)", info.TailRecords)
	}
	if v := fresh.MustGet("e0"); v != 7 {
		t.Errorf("e0 = %d, want 7", v)
	}
	if v := fresh.MustGet("e1"); v != 6 {
		t.Errorf("e1 = %d, want 6", v)
	}
}

// TestRecoveryPrefersOlderValidCheckpoint: a torn newer checkpoint is
// skipped (and reported) in favor of an older valid one; the longer
// tail replay still reaches the same state.
func TestRecoveryPrefersOlderValidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 1, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if err := s.LogCommit(commit(w("e0", 1))).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.Write(dir, checkpoint.State{
		Frontier: 1, Entries: []checkpoint.Entry{{Name: "e0", Val: 1}},
	}, checkpoint.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 2))).Wait(); err != nil {
		t.Fatal(err)
	}
	newer, _, err := checkpoint.Write(dir, checkpoint.State{
		Frontier: 2, Entries: []checkpoint.Entry{{Name: "e0", Val: 2}},
	}, checkpoint.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 3))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer checkpoint mid-body.
	data, err := os.ReadFile(newer)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newer, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := entity.NewUniformStore("e", 1, 0)
	s2, info := mustOpen(t, dir, 1, fresh, Options{})
	defer s2.Close()
	if info.CheckpointSeq != 1 {
		t.Fatalf("CheckpointSeq = %d, want 1 (older valid checkpoint)", info.CheckpointSeq)
	}
	if len(info.SkippedCheckpoints) != 1 || info.SkippedCheckpoints[0] != filepath.Base(newer) {
		t.Fatalf("SkippedCheckpoints = %v, want [%s]", info.SkippedCheckpoints, filepath.Base(newer))
	}
	if info.TailRecords != 2 {
		t.Errorf("TailRecords = %d, want 2 (seqs 2 and 3)", info.TailRecords)
	}
	if v := fresh.MustGet("e0"); v != 3 {
		t.Errorf("e0 = %d, want 3", v)
	}
}

// TestNoCheckpointByteIdentity pins the acceptance criterion that a
// run without any checkpointing is byte-identical to the
// pre-checkpoint durability layer: the directory holds exactly the
// active per-shard files, named as before, containing exactly the
// bytes the wal encoding has always produced.
func TestNoCheckpointByteIdentity(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 2, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	if err := s.LogCommit(commit(w("e0", 41))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e0", 42), w("e1", 7))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if names := dirNames(t, dir); len(names) != 1 || names[0] != "wal-0.log" {
		t.Fatalf("dir = %v, want exactly [wal-0.log]", names)
	}
	// The exact bytes the format has produced since the layer landed:
	// singleton record, then marker + two members.
	var want []byte
	want = wal.AppendRecord(want, "e0", 41, 1)
	want = wal.AppendRecord(want, "", 2, 2)
	want = wal.AppendRecord(want, "e0", 42, 3)
	want = wal.AppendRecord(want, "e1", 7, 4)
	got, err := os.ReadFile(filepath.Join(dir, "wal-0.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("log bytes diverged from the pre-checkpoint format:\n got %x\nwant %x", got, want)
	}
}

// TestSegmentNameParsing covers the active/sealed classifier.
func TestSegmentNameParsing(t *testing.T) {
	if k, ok := parseActiveName("wal-3.log"); !ok || k != 3 {
		t.Errorf("parseActiveName(wal-3.log) = %d, %v", k, ok)
	}
	for _, bad := range []string{"wal-x.log", "wal-3.sealed-5.log", "ckpt-5.ckpt", "wal-.log", "foo.log"} {
		if _, ok := parseActiveName(bad); ok {
			t.Errorf("parseActiveName(%s) accepted", bad)
		}
	}
	k, seq, ok := parseSealedName("wal-2.sealed-00000000000000000042.log")
	if !ok || k != 2 || seq != 42 {
		t.Errorf("parseSealedName = %d, %d, %v", k, seq, ok)
	}
	for _, bad := range []string{"wal-2.log", "wal-2.sealed-.log", "wal-.sealed-5.log", "wal-2.sealed-5.ckpt"} {
		if _, _, ok := parseSealedName(bad); ok {
			t.Errorf("parseSealedName(%s) accepted", bad)
		}
	}
}

// TestRemoveSealedBoundsDisk: removing a sealed segment deletes the
// file and drops it from the listing.
func TestRemoveSealedBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	store := entity.NewUniformStore("e", 1, 0)
	s, _ := mustOpen(t, dir, 1, store, Options{Mode: SyncAlways})
	defer s.Close()
	if err := s.LogCommit(commit(w("e0", 1))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	segs := s.SealedSegments()
	if len(segs) != 1 {
		t.Fatalf("sealed = %d", len(segs))
	}
	if err := s.RemoveSealed(segs[0]); err != nil {
		t.Fatal(err)
	}
	if n := len(s.SealedSegments()); n != 0 {
		t.Fatalf("sealed after removal = %d", n)
	}
	for _, n := range dirNames(t, dir) {
		if strings.Contains(n, "sealed") {
			t.Fatalf("sealed file %s survived removal", n)
		}
	}
}
