package durable

import (
	"fmt"
	"path/filepath"
	"testing"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/entity"
)

// TestRecoveryIntoPagedStore: the recovery path (checkpoint base +
// WAL tail replay) must rebuild a paged store exactly as it rebuilds
// the memory store, with the pool evicting throughout — the heap file
// is a spill area, so recovery after any crash (including mid-flush)
// is checkpoint + tail, never the heap.
func TestRecoveryIntoPagedStore(t *testing.T) {
	dir := t.TempDir()
	const n = 64 // 5 pages of 15 slots through a 2-frame pool
	store := entity.NewUniformStore("e", n, 0)
	s, _ := mustOpen(t, dir, 2, store, Options{Mode: SyncAlways})
	// A spread of commits, a checkpoint mid-stream, then a tail.
	for i := 0; i < n; i += 2 {
		if err := s.LogCommit(commit(w(fmt.Sprintf("e%d", i), int64(i+100)))).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	entries := make([]checkpoint.Entry, 0, n)
	for name, v := range store.Snapshot() {
		entries = append(entries, checkpoint.Entry{Name: name, Val: v})
	}
	if _, _, err := checkpoint.Write(dir, checkpoint.State{
		Frontier: s.Frontier(), Entries: entries,
	}, checkpoint.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit(commit(w("e1", 999), w("e63", -7))).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for name, cfg := range map[string]entity.PagedConfig{
		"tiny-pool": {PageSize: 128, PoolPages: 2},
		"roomy":     {PageSize: 4096, PoolPages: 8},
	} {
		t.Run(name, func(t *testing.T) {
			cfg.Path = filepath.Join(t.TempDir(), "heap.dat")
			paged, err := entity.NewUniformPagedStore("e", n, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer paged.Close()
			s2, info := mustOpen(t, dir, 2, paged, Options{})
			defer s2.Close()
			if info.CheckpointEntities != n {
				t.Errorf("CheckpointEntities = %d, want %d", info.CheckpointEntities, n)
			}
			// LogCommit writes only the WAL, so the checkpoint above
			// captured the store's initial zeros and its frontier
			// supersedes the even-entity records; the recovered state
			// is therefore the zero base plus the two tail writes.
			want := map[string]int64{"e1": 999, "e63": -7}
			got := paged.Snapshot()
			if len(got) != n {
				t.Fatalf("recovered %d entities, want %d", len(got), n)
			}
			for k, v := range got {
				if v != want[k] {
					t.Errorf("%s = %d, want %d", k, v, want[k])
				}
			}
		})
	}
}
