// Package intern maps entity names to dense uint32 IDs so the hot
// paths of the lock table, the concurrency graph and the rollback
// bookkeeping can index slices and compare integers instead of hashing
// strings. Interning happens once, at entity registration
// (entity.Store.Define and the store constructors); everything below
// the facade/wire/observability boundary speaks IDs, and names are
// resolved back only at those edges (see DESIGN.md, "Entity interning
// and the name/ID boundary").
//
// IDs are assigned in interning order starting at 0 and are never
// reused, so a Table with n names has exactly the IDs 0..n-1 — dense by
// construction, which is what makes slice indexing safe.
package intern

import (
	"fmt"
	"sync"
)

// ID is a dense interned entity identifier.
type ID uint32

// None is the sentinel for "no entity". It is not a valid ID.
const None ID = ^ID(0)

// Table interns strings to dense IDs. It is safe for concurrent use:
// interning takes a write lock, lookups a read lock. The zero value is
// not usable; call NewTable.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]ID
	names []string
}

// NewTable returns an empty interner.
func NewTable() *Table {
	return &Table{ids: map[string]ID{}}
}

// Intern returns the ID for name, assigning the next dense ID if name
// has not been seen before.
func (t *Table) Intern(name string) ID {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = ID(len(t.names))
	if id == None {
		panic("intern: table full")
	}
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the ID for name, if interned.
func (t *Table) Lookup(name string) (ID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the string for id. It panics on IDs the table never
// issued (a programming error: IDs only come from Intern).
func (t *Table) Name(id ID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.names) {
		panic(fmt.Sprintf("intern: unknown ID %d (table has %d names)", id, len(t.names)))
	}
	return t.names[id]
}

// Len returns the number of interned names (and so the exclusive upper
// bound of issued IDs).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}
