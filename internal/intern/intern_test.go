package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	tab := NewTable()
	if got := tab.Len(); got != 0 {
		t.Fatalf("empty table Len = %d, want 0", got)
	}
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	c := tab.Intern("gamma")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("IDs not dense in interning order: got %d,%d,%d", a, b, c)
	}
	if again := tab.Intern("beta"); again != b {
		t.Fatalf("re-interning beta gave %d, want %d", again, b)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	for id, want := range map[ID]string{a: "alpha", b: "beta", c: "gamma"} {
		if got := tab.Name(id); got != want {
			t.Errorf("Name(%d) = %q, want %q", id, got, want)
		}
	}
	if id, ok := tab.Lookup("gamma"); !ok || id != c {
		t.Fatalf("Lookup(gamma) = %d,%v, want %d,true", id, ok, c)
	}
	if _, ok := tab.Lookup("delta"); ok {
		t.Fatal("Lookup(delta) succeeded for an uninterned name")
	}
}

func TestInternUnknownIDPanics(t *testing.T) {
	tab := NewTable()
	tab.Intern("only")
	defer func() {
		if recover() == nil {
			t.Fatal("Name on an unissued ID did not panic")
		}
	}()
	tab.Name(5)
}

func TestInternConcurrent(t *testing.T) {
	tab := NewTable()
	const workers = 8
	const names = 100
	var wg sync.WaitGroup
	got := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]ID, names)
			for i := 0; i < names; i++ {
				ids[i] = tab.Intern(fmt.Sprintf("e%d", i))
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	if tab.Len() != names {
		t.Fatalf("Len = %d, want %d", tab.Len(), names)
	}
	for w := 1; w < workers; w++ {
		for i := range got[0] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d saw ID %d for e%d, worker 0 saw %d", w, got[w][i], i, got[0][i])
			}
		}
	}
	// Every ID round-trips through Name back to its source string.
	for i, id := range got[0] {
		if want := fmt.Sprintf("e%d", i); tab.Name(id) != want {
			t.Fatalf("Name(%d) = %q, want %q", id, tab.Name(id), want)
		}
	}
}

func TestNameIsAllocationFree(t *testing.T) {
	tab := NewTable()
	id := tab.Intern("hot")
	if n := testing.AllocsPerRun(100, func() {
		_ = tab.Name(id)
	}); n != 0 {
		t.Fatalf("Name allocates %v per run, want 0", n)
	}
}
