// Package history records lock-hold episodes of committed transactions
// and checks conflict serializability — the oracle behind the paper's
// remark that "rollbacks do not interfere with the serializability of
// the two-phase protocol" (§2).
//
// The engine reports a grant when a lock is acquired and a release when
// the entity is unlocked with its value installed (or the transaction
// commits). Episodes discarded by rollback are retracted: the rolled
// back computation never happened, so it must not constrain the
// serialization order. The checker builds the conflict graph over
// committed transactions (edges ordered by hold-interval precedence on
// each entity) and verifies it is acyclic.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"partialrollback/internal/graph"
	"partialrollback/internal/txn"
)

// Clock is a shared logical clock. Recorders in different engine shards
// draw ticks from one Clock so their episodes live on a single global
// timeline: the atomic counter respects real-time order, and shard
// co-location guarantees conflicting holds never overlap in real time,
// so merged histories stay checkable with the same interval logic.
type Clock struct {
	v atomic.Int64
}

// Tick advances and returns the clock.
func (c *Clock) Tick() int64 { return c.v.Add(1) }

// Mode mirrors lock modes without importing internal/lock (history is
// observational and keeps no lock semantics of its own).
type Mode int

// Access modes.
const (
	Read Mode = iota
	Write
)

func (m Mode) String() string {
	if m == Write {
		return "W"
	}
	return "R"
}

// Episode is one completed lock-hold: txn held entity in mode over
// [Grant, Release) on the recorder's logical clock.
type Episode struct {
	Txn            txn.ID
	Entity         string
	Mode           Mode
	Grant, Release int64
}

// Recorder accumulates episodes. Safe for concurrent use: the striped
// engine reports uncontended grants and releases from concurrently
// stepping transactions, so the recorder serializes internally (one
// mutex; recording is opt-in and off the default hot path).
type Recorder struct {
	mu    sync.Mutex
	clock int64
	// shared, when non-nil, supersedes the private clock: ticks come
	// from the shared Clock so several recorders (one per shard) stamp
	// episodes on one global timeline.
	shared *Clock
	// open maps (txn, entity) to the grant clock and mode of the
	// in-progress hold.
	open map[txn.ID]map[string]openHold
	// done holds completed episodes of transactions not yet committed
	// (a two-phase transaction may unlock before committing).
	done map[txn.ID][]Episode
	// committed holds the episodes of committed transactions.
	committed []Episode
}

type openHold struct {
	grant int64
	mode  Mode
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		open: map[txn.ID]map[string]openHold{},
		done: map[txn.ID][]Episode{},
	}
}

// NewSharedClockRecorder returns an empty recorder drawing ticks from c
// instead of a private clock.
func NewSharedClockRecorder(c *Clock) *Recorder {
	r := NewRecorder()
	r.shared = c
	return r
}

// Tick advances and returns the logical clock.
func (r *Recorder) Tick() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tick()
}

// tick advances the clock; caller holds r.mu.
func (r *Recorder) tick() int64 {
	if r.shared != nil {
		r.clock = r.shared.Tick()
		return r.clock
	}
	r.clock++
	return r.clock
}

// Now returns the current clock without advancing it.
func (r *Recorder) Now() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock
}

// OnGrant records that id acquired entity in mode.
func (r *Recorder) OnGrant(id txn.ID, entityName string, m Mode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tick()
	if r.open[id] == nil {
		r.open[id] = map[string]openHold{}
	}
	r.open[id][entityName] = openHold{grant: t, mode: m}
}

// OnRelease completes the hold of entity by id (unlock with install, or
// commit-time release).
func (r *Recorder) OnRelease(id txn.ID, entityName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onRelease(id, entityName)
}

// onRelease is OnRelease; caller holds r.mu.
func (r *Recorder) onRelease(id txn.ID, entityName string) {
	t := r.tick()
	h, ok := r.open[id][entityName]
	if !ok {
		return
	}
	delete(r.open[id], entityName)
	r.done[id] = append(r.done[id], Episode{
		Txn: id, Entity: entityName, Mode: h.mode, Grant: h.grant, Release: t,
	})
}

// OnRetract discards the in-progress hold of entity by id (rollback
// released the lock without installing a value; the episode never
// happened).
func (r *Recorder) OnRetract(id txn.ID, entityName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.open[id], entityName)
}

// OnCommit moves id's completed episodes into the committed history.
// Any still-open holds are closed at the current clock first (commit
// releases all remaining locks).
func (r *Recorder) OnCommit(id txn.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.open[id]))
	for e := range r.open[id] {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, e := range names {
		r.onRelease(id, e)
	}
	r.committed = append(r.committed, r.done[id]...)
	delete(r.done, id)
	delete(r.open, id)
}

// OnAbort discards everything recorded for id.
func (r *Recorder) OnAbort(id txn.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.done, id)
	delete(r.open, id)
}

// Committed returns the committed episodes (shared slice; treat as
// read-only, and only after the engine has quiesced).
func (r *Recorder) Committed() []Episode {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committed
}

// Merged builds a read-only recorder from already-committed episodes of
// several recorders (e.g. one per engine shard). The episodes must have
// been timestamped against one shared Clock; they are ordered by grant
// tick so CheckSerializable and SerialOrder behave as if a single
// recorder had observed the whole execution.
func Merged(episodes []Episode) *Recorder {
	merged := make([]Episode, len(episodes))
	copy(merged, episodes)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Grant != merged[j].Grant {
			return merged[i].Grant < merged[j].Grant
		}
		return merged[i].Release < merged[j].Release
	})
	r := NewRecorder()
	r.committed = merged
	for _, ep := range merged {
		if ep.Release > r.clock {
			r.clock = ep.Release
		}
	}
	return r
}

// ConflictEdge is one edge of the conflict graph: From must serialize
// before To because of conflicting access to Entity.
type ConflictEdge struct {
	From, To txn.ID
	Entity   string
}

// CheckSerializable builds the conflict graph over the committed
// episodes and returns its edges, failing if two conflicting holds
// overlap in time (a locking violation) or if the graph has a cycle
// (not conflict-serializable).
func (r *Recorder) CheckSerializable() ([]ConflictEdge, error) {
	byEntity := map[string][]Episode{}
	for _, ep := range r.committed {
		byEntity[ep.Entity] = append(byEntity[ep.Entity], ep)
	}
	g := graph.NewDigraph()
	var edges []ConflictEdge
	names := make([]string, 0, len(byEntity))
	for e := range byEntity {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, entityName := range names {
		eps := byEntity[entityName]
		sort.Slice(eps, func(i, j int) bool { return eps[i].Grant < eps[j].Grant })
		for i := 0; i < len(eps); i++ {
			for j := i + 1; j < len(eps); j++ {
				a, b := eps[i], eps[j]
				if a.Txn == b.Txn {
					continue
				}
				if a.Mode == Read && b.Mode == Read {
					continue
				}
				if b.Grant < a.Release {
					return nil, fmt.Errorf(
						"history: conflicting holds of %q overlap: %v [%d,%d) %v vs %v [%d,%d) %v",
						entityName, a.Txn, a.Grant, a.Release, a.Mode, b.Txn, b.Grant, b.Release, b.Mode)
				}
				g.AddEdge(int(a.Txn), int(b.Txn))
				edges = append(edges, ConflictEdge{From: a.Txn, To: b.Txn, Entity: entityName})
			}
		}
	}
	if g.HasCycle() {
		return edges, fmt.Errorf("history: conflict graph has a cycle; execution not conflict-serializable")
	}
	return edges, nil
}

// SerialOrder returns a topological order of the committed transactions
// consistent with the conflict graph — an equivalent serial execution.
// It fails under the same conditions as CheckSerializable.
func (r *Recorder) SerialOrder() ([]txn.ID, error) {
	edges, err := r.CheckSerializable()
	if err != nil {
		return nil, err
	}
	all := map[txn.ID]bool{}
	for _, ep := range r.committed {
		all[ep.Txn] = true
	}
	indeg := map[txn.ID]int{}
	succ := map[txn.ID]map[txn.ID]bool{}
	for id := range all {
		indeg[id] = 0
	}
	for _, e := range edges {
		if succ[e.From] == nil {
			succ[e.From] = map[txn.ID]bool{}
		}
		if !succ[e.From][e.To] {
			succ[e.From][e.To] = true
			indeg[e.To]++
		}
	}
	var ready []txn.ID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []txn.ID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var next []txn.ID
		for s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		ready = append(ready, next...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(order) != len(all) {
		return nil, fmt.Errorf("history: topological sort incomplete (%d of %d)", len(order), len(all))
	}
	return order, nil
}
