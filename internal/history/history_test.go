package history

import (
	"reflect"
	"strings"
	"testing"

	"partialrollback/internal/txn"
)

func TestSerialHistory(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Write)
	r.OnRelease(1, "a")
	r.OnCommit(1)
	r.OnGrant(2, "a", Write)
	r.OnCommit(2) // implicit release at commit
	edges, err := r.CheckSerializable()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0].From != 1 || edges[0].To != 2 {
		t.Errorf("edges = %v", edges)
	}
	order, err := r.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []txn.ID{1, 2}) {
		t.Errorf("order = %v", order)
	}
}

func TestReadersDontConflict(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Read)
	r.OnGrant(2, "a", Read)
	r.OnCommit(1)
	r.OnCommit(2)
	edges, err := r.CheckSerializable()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Errorf("read-read conflict recorded: %v", edges)
	}
}

func TestOverlapDetected(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Write)
	r.OnGrant(2, "a", Write) // overlapping writers: locking violation
	r.OnCommit(1)
	r.OnCommit(2)
	if _, err := r.CheckSerializable(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("want overlap error, got %v", err)
	}
}

func TestRetractErasesEpisode(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Write)
	r.OnRetract(1, "a") // rollback released without install
	r.OnGrant(2, "a", Write)
	r.OnCommit(2)
	r.OnGrant(1, "a", Write) // re-acquired after rollback
	r.OnCommit(1)
	edges, err := r.CheckSerializable()
	if err != nil {
		t.Fatal(err)
	}
	// Only the re-acquired episode counts: 2 -> 1.
	if len(edges) != 1 || edges[0].From != 2 || edges[0].To != 1 {
		t.Errorf("edges = %v", edges)
	}
}

func TestAbortDiscardsEverything(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Write)
	r.OnRelease(1, "a")
	r.OnAbort(1)
	if len(r.Committed()) != 0 {
		t.Error("aborted episodes leaked")
	}
}

func TestCycleDetected(t *testing.T) {
	// Construct an artificial non-serializable history: T1 before T2 on
	// a, T2 before T1 on b.
	r := NewRecorder()
	r.OnGrant(1, "a", Write)
	r.OnRelease(1, "a")
	r.OnGrant(2, "b", Write)
	r.OnRelease(2, "b")
	r.OnGrant(2, "a", Write)
	r.OnRelease(2, "a")
	r.OnGrant(1, "b", Write)
	r.OnRelease(1, "b")
	r.OnCommit(1)
	r.OnCommit(2)
	if _, err := r.CheckSerializable(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want cycle error, got %v", err)
	}
	if _, err := r.SerialOrder(); err == nil {
		t.Error("serial order must fail on a cycle")
	}
}

func TestReleaseWithoutGrantIgnored(t *testing.T) {
	r := NewRecorder()
	r.OnRelease(1, "ghost")
	r.OnCommit(1)
	if len(r.Committed()) != 0 {
		t.Error("phantom episode")
	}
}

func TestRWandWRConflicts(t *testing.T) {
	r := NewRecorder()
	r.OnGrant(1, "a", Read)
	r.OnRelease(1, "a")
	r.OnGrant(2, "a", Write)
	r.OnRelease(2, "a")
	r.OnGrant(3, "a", Read)
	r.OnRelease(3, "a")
	for _, id := range []txn.ID{1, 2, 3} {
		r.OnCommit(id)
	}
	edges, err := r.CheckSerializable()
	if err != nil {
		t.Fatal(err)
	}
	// 1->2 (R before W) and 2->3 (W before R); 1 and 3 don't conflict.
	if len(edges) != 2 {
		t.Errorf("edges = %v", edges)
	}
	order, err := r.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []txn.ID{1, 2, 3}) {
		t.Errorf("order = %v", order)
	}
}

func TestClock(t *testing.T) {
	r := NewRecorder()
	t0 := r.Now()
	t1 := r.Tick()
	if t1 != t0+1 || r.Now() != t1 {
		t.Error("clock")
	}
}
