package partialrollback_test

import (
	"fmt"

	pr "partialrollback"
)

// Example demonstrates the core loop: two transfers deadlock, the
// system partially rolls one back, and both commit.
func Example() {
	store := pr.NewStore(map[string]int64{"checking": 100, "savings": 200})
	sys := pr.New(pr.Config{Store: store, Strategy: pr.MCS, Policy: pr.OrderedMinCost{}})

	t1 := sys.MustRegister(pr.NewProgram("to-savings").
		Local("c", 0).Local("s", 0).
		LockX("checking").Read("checking", "c").
		LockX("savings").Read("savings", "s").
		Write("checking", pr.Sub(pr.L("c"), pr.C(25))).
		Write("savings", pr.Add(pr.L("s"), pr.C(25))).
		MustBuild())
	t2 := sys.MustRegister(pr.NewProgram("to-checking").
		Local("c", 0).Local("s", 0).
		LockX("savings").Read("savings", "s").
		LockX("checking").Read("checking", "c").
		Write("savings", pr.Sub(pr.L("s"), pr.C(10))).
		Write("checking", pr.Add(pr.L("c"), pr.C(10))).
		MustBuild())

	for !sys.AllCommitted() {
		for _, id := range []pr.TxnID{t1, t2} {
			if res, err := sys.Step(id); err != nil {
				panic(err)
			} else if res.Outcome == pr.BlockedDeadlock {
				fmt.Printf("deadlock: victim %v rolled back to lock state %d\n",
					res.Deadlock.Victims[0].Txn, res.Deadlock.Victims[0].Target)
			}
		}
	}
	fmt.Printf("checking=%d savings=%d deadlocks=%d\n",
		store.MustGet("checking"), store.MustGet("savings"), sys.Stats().Deadlocks)
	// Output:
	// deadlock: victim T2 rolled back to lock state 0
	// checking=85 savings=215 deadlocks=1
}

// ExampleClusterWrites shows the §5 compile-time optimization: a
// scattered program becomes three-phase, restoring every lock state.
func ExampleClusterWrites() {
	scattered := pr.NewProgram("scattered").
		Local("a", 0).Local("b", 0).
		LockX("A").Read("A", "a").
		Write("A", pr.Add(pr.L("a"), pr.C(1))).
		LockX("B").Read("B", "b").
		Write("A", pr.Add(pr.L("a"), pr.C(2))). // re-write scatters A
		Write("B", pr.L("b")).
		MustBuild()

	res, err := pr.ClusterWrites(scattered)
	if err != nil {
		panic(err)
	}
	fmt.Printf("moved %d writes; three-phase: %v\n",
		res.MovedWrites, pr.IsThreePhase(res.Program))
	// Output:
	// moved 3 writes; three-phase: true
}

// ExampleRunConcurrent drives transactions with one goroutine each.
func ExampleRunConcurrent() {
	store := pr.NewUniformStore("acct", 4, 100)
	programs := []*pr.Program{
		pr.NewProgram("P1").Local("v", 0).
			LockX("acct0").Read("acct0", "v").
			Write("acct0", pr.Add(pr.L("v"), pr.C(1))).MustBuild(),
		pr.NewProgram("P2").Local("v", 0).
			LockX("acct0").Read("acct0", "v").
			Write("acct0", pr.Add(pr.L("v"), pr.C(1))).MustBuild(),
	}
	out, err := pr.RunConcurrent(store, programs, pr.RunOptions{Strategy: pr.SDG})
	if err != nil {
		panic(err)
	}
	fmt.Printf("commits=%d acct0=%d\n", out.Stats.Commits, store.MustGet("acct0"))
	// Output:
	// commits=2 acct0=102
}
