// Savepoints: the paper is a direct precursor of SQL savepoints, and
// the engine exposes the correspondence. Every lock state is an
// implicit savepoint; ForceRollback("ROLLBACK TO SAVEPOINT") returns
// the transaction to one. Under the multi-copy strategy every lock
// state is restorable; under the single-copy strategy only the
// well-defined ones are — run this program to watch which savepoints
// each strategy accepts and what state comes back.
//
// Run with:
//
//	go run ./examples/savepoints
package main

import (
	"fmt"
	"log"

	pr "partialrollback"
	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// itinerary books a three-leg trip, updating each leg's seat count and
// a running total; the write to "legs" after every booking scatters the
// single-copy strategy's restorable states.
func itinerary() *txn.Program {
	b := txn.NewProgram("itinerary").
		Local("seats", 0).Local("legs", 0)
	for _, leg := range []string{"flight", "hotel", "car"} {
		b.LockX(leg).
			Read(leg, "seats").
			Write(leg, value.Sub(value.L("seats"), value.C(1))).
			Compute("legs", value.Add(value.L("legs"), value.C(1)))
	}
	return b.MustBuild()
}

func main() {
	for _, strat := range []core.Strategy{core.MCS, core.SDG} {
		fmt.Printf("== strategy %v ==\n", strat)
		store := entity.NewStore(map[string]int64{"flight": 10, "hotel": 20, "car": 5})
		sys := pr.New(pr.Config{Store: store, Strategy: strat})
		id := sys.MustRegister(itinerary())

		prog := itinerary()
		// Execute everything except Commit, announcing savepoints.
		for i := 0; i < len(prog.Ops)-1; i++ {
			op := prog.Ops[i]
			if op.Kind == txn.OpLockX {
				fmt.Printf("  savepoint %d (before booking %s)\n", sys.LockIndex(id), op.Entity)
			}
			if _, err := sys.Step(id); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  booked all legs; locals=%v\n", locals(sys, id))

		// Try to roll back to each savepoint, deepest first.
		for q := 2; q >= 0; q-- {
			err := sys.ForceRollback(id, q)
			if err != nil {
				fmt.Printf("  ROLLBACK TO SAVEPOINT %d: refused (%v)\n", q, err)
				continue
			}
			fmt.Printf("  ROLLBACK TO SAVEPOINT %d: ok; locals=%v held=%v\n",
				q, locals(sys, id), sys.Held(id))
			break
		}

		// Resume and commit; bookings from the savepoint onward re-run.
		for {
			res, err := sys.Step(id)
			if err != nil {
				log.Fatal(err)
			}
			if res.Outcome == pr.Committed {
				break
			}
		}
		fmt.Printf("  committed: flight=%d hotel=%d car=%d\n\n",
			store.MustGet("flight"), store.MustGet("hotel"), store.MustGet("car"))
	}
	fmt.Println("the multi-copy strategy honors every savepoint; the single-copy one")
	fmt.Println("refuses savepoints destroyed by the cross-leg counter and retreats to")
	fmt.Println("the newest well-defined state — §4's storage/precision trade, as an API.")
}

func locals(sys *pr.System, id pr.TxnID) map[string]int64 {
	l, err := sys.Locals(id)
	if err != nil {
		log.Fatal(err)
	}
	return l
}
