// Distributed: the §3.3 multi-site system, fully message-passing. A
// warehouse network partitions stock across regional sites; transfer
// transactions span sites, acquiring locks in site order so every
// deadlock stays local to one site and is repaired there with a partial
// rollback message to the victim's home.
//
// Run with:
//
//	go run ./examples/distributed [-sites 3] [-latency 15]
package main

import (
	"flag"
	"fmt"
	"log"

	"partialrollback/internal/core"
	"partialrollback/internal/dist"
	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

var (
	sites   = flag.Int("sites", 3, "number of sites")
	latency = flag.Int64("latency", 15, "inter-site message latency (virtual ticks)")
)

func main() {
	flag.Parse()

	// Stock for 4 products at every site; product p at site s is
	// "stock:s:p", explicitly placed.
	const products = 4
	tp := dist.Topology{Sites: *sites, EntitySite: map[string]int{}}
	initial := map[string]int64{}
	var names []string
	for s := 0; s < *sites; s++ {
		for p := 0; p < products; p++ {
			name := fmt.Sprintf("stock:%d:%d", s, p)
			tp.EntitySite[name] = s
			initial[name] = 100
			names = append(names, name)
		}
	}
	newStore := func() *entity.Store {
		st := entity.NewStore(initial)
		st.AddConstraint(entity.SumConstraint("stock-total",
			int64(len(names))*100, names...))
		return st
	}

	// Rebalancing transactions move stock between sites (cross-site)
	// and between products at one site (local, deadlock-prone). All
	// programs are written natively in site order — locks at the
	// lower-numbered site come first — so no transform is needed and
	// the audit computation between locks is preserved (that is the
	// progress partial rollback saves).
	var programs []*txn.Program
	mk := func(name, from, to string, qty int64) *txn.Program {
		first, second := from, to
		if tp.SiteOf(second) < tp.SiteOf(first) {
			first, second = second, first
		}
		bld := txn.NewProgram(name).
			Local("f", 0).Local("t", 0).Local("audit", 0).
			LockX(first).Read(first, "f")
		for i := 0; i < 6; i++ {
			bld.Compute("audit", value.Add(value.L("audit"), value.Mod(value.L("f"), value.C(7))))
		}
		bld.LockX(second).Read(second, "t")
		// Locals f/t follow lock order; the transfer amounts follow
		// from/to, expressed over whichever local holds each side.
		fromLocal, toLocal := "f", "t"
		if first != from {
			fromLocal, toLocal = "t", "f"
		}
		return bld.
			Write(from, value.Sub(value.L(fromLocal), value.C(qty))).
			Write(to, value.Add(value.L(toLocal), value.C(qty))).
			MustBuild()
	}
	// Local rebalances chain three products at one site with audit
	// computation between the locks, so a deadlock victim that has
	// already acquired its first products keeps that progress under
	// partial rollback.
	mk4 := func(name string, ents [4]string, qty int64) *txn.Program {
		bld := txn.NewProgram(name).
			Local("v0", 0).Local("v1", 0).Local("v2", 0).Local("v3", 0).
			Local("audit", 0)
		for i, e := range ents {
			v := fmt.Sprintf("v%d", i)
			bld.LockX(e).Read(e, v)
			for k := 0; k < 5; k++ {
				bld.Compute("audit", value.Add(value.L("audit"), value.Mod(value.L(v), value.C(7))))
			}
		}
		return bld.
			Write(ents[0], value.Sub(value.L("v0"), value.C(3*qty))).
			Write(ents[1], value.Add(value.L("v1"), value.C(qty))).
			Write(ents[2], value.Add(value.L("v2"), value.C(qty))).
			Write(ents[3], value.Add(value.L("v3"), value.C(qty))).
			MustBuild()
	}
	n := 0
	for s := 0; s < *sites; s++ {
		next := (s + 1) % *sites
		for p := 0; p < products; p++ {
			// Cross-site move, and a local four-product chain. Chains
			// alternate direction (ascending vs descending product
			// order), so deadlocks contest *mid-chain* locks — exactly
			// where partial rollback preserves the victim's earlier
			// acquisitions and audit work.
			chain := [4]string{}
			for i := range chain {
				idx := (p + i) % products
				if p%2 == 1 {
					idx = (p + products - i) % products
				}
				chain[i] = fmt.Sprintf("stock:%d:%d", s, idx)
			}
			programs = append(programs,
				mk(fmt.Sprintf("x%d", n), fmt.Sprintf("stock:%d:%d", s, p), fmt.Sprintf("stock:%d:%d", next, p), 5),
				mk4(fmt.Sprintf("l%d", n), chain, 3),
			)
			n++
		}
	}
	w := sim.Workload{Name: "warehouse", NewStore: newStore, Programs: programs}

	fmt.Printf("%d transactions over %d sites (latency %d ticks/message):\n\n", len(programs), *sites, *latency)
	for _, strat := range []core.Strategy{core.Total, core.MCS} {
		res, err := dist.MsgRun(w, dist.MsgConfig{
			Topology: tp, Strategy: strat, Latency: *latency, RecordHistory: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Recorder.CheckSerializable(); err != nil {
			log.Fatalf("%v: %v", strat, err)
		}
		var total int64
		for _, name := range names {
			total += res.Store.MustGet(name)
		}
		if want := int64(len(names)) * 100; total != want {
			log.Fatalf("%v: stock total %d, want %d", strat, total, want)
		}
		m := res.Metrics
		fmt.Printf("  %-6v commits=%-3d deadlocks=%-3d lost ops=%-4d messages=%-4d copy ships=%-3d makespan=%d\n",
			strat, m.Commits, m.Deadlocks, m.LostOps, m.Total(), m.CopyShips, m.Makespan)
		fmt.Printf("         deadlocks by site: %v (all local — site ordering forbids cross-site cycles)\n",
			m.PerSiteDeadlocks)
	}
	fmt.Println("\nboth runs were conflict-serializable and preserved total stock;")
	fmt.Println("partial rollback repairs each local deadlock while keeping the victim's")
	fmt.Println("progress at other sites — only release messages cross the network.")
}
