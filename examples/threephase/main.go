// Threephase: §5's transaction-structure advice, live. The same
// logical update written three ways — writes scattered across lock
// intervals, writes clustered next to their locks, and the three-phase
// acquire/update/release form — run under the single-copy (SDG)
// strategy against an adversary that forces a deadlock. The victim's
// rollback depth depends entirely on its structure.
//
// Run with:
//
//	go run ./examples/threephase
package main

import (
	"fmt"
	"log"

	pr "partialrollback"
)

// Each variant locks p (private), then a, b, c, d; the adversary forces
// a deadlock on d, whose ideal rollback target is the state just before
// LockX(d). How close the victim can get to that ideal depends on where
// its writes sit.

func scattered() *pr.Program {
	return pr.NewProgram("scattered").
		Local("va", 0).Local("vb", 0).Local("vc", 0).
		LockX("a").Read("a", "va").
		Write("a", pr.Add(pr.L("va"), pr.C(1))).
		LockX("b").Read("b", "vb").
		Write("b", pr.Add(pr.L("vb"), pr.C(7))).
		LockX("c").Read("c", "vc").
		Write("a", pr.Add(pr.L("va"), pr.C(2))). // rewrites a: destroys states 1-2
		Write("b", pr.Add(pr.L("vb"), pr.C(1))). // rewrites b: destroys state 2
		LockX("d").
		Write("c", pr.Add(pr.L("vc"), pr.C(1))).
		MustBuild()
}

func clustered() *pr.Program {
	return pr.NewProgram("clustered").
		Local("va", 0).Local("vb", 0).Local("vc", 0).
		LockX("a").Read("a", "va").
		Write("a", pr.Add(pr.L("va"), pr.C(1))).
		Write("a", pr.Add(pr.L("va"), pr.C(3))).
		LockX("b").Read("b", "vb").
		Write("b", pr.Add(pr.L("vb"), pr.C(1))).
		LockX("c").Read("c", "vc").
		Write("c", pr.Add(pr.L("vc"), pr.C(1))).
		LockX("d").
		MustBuild()
}

func threePhase() *pr.Program {
	return pr.NewProgram("three-phase").
		Local("va", 0).Local("vb", 0).Local("vc", 0).
		LockX("a").Read("a", "va").
		LockX("b").Read("b", "vb").
		LockX("c").Read("c", "vc").
		LockX("d").
		DeclareLastLock().
		Write("a", pr.Add(pr.L("va"), pr.C(3))).
		Write("b", pr.Add(pr.L("vb"), pr.C(1))).
		Write("c", pr.Add(pr.L("vc"), pr.C(1))).
		MustBuild()
}

// adversary grabs d first, then wants c — once the victim holds c and
// requests d, the cycle closes.
func adversary() *pr.Program {
	return pr.NewProgram("adversary").
		Local("x", 0).
		LockX("d").Read("d", "x").
		LockX("c").
		MustBuild()
}

func main() {
	fmt.Println("same update, three structures; deadlock forced at LockX(d):")
	fmt.Println()
	for _, build := range []func() *pr.Program{scattered, clustered, threePhase} {
		victim := build()
		fmt.Printf("%-12s three-phase form: %-5v ", victim.Name, pr.IsThreePhase(victim))

		store := pr.NewStore(map[string]int64{"a": 0, "b": 0, "c": 0, "d": 0})
		sys := pr.New(pr.Config{Store: store, Strategy: pr.SDG, Policy: pr.OrderedMinCost{}})
		adv := sys.MustRegister(adversary())
		vic := sys.MustRegister(victim)

		// Adversary takes d.
		step := func(id pr.TxnID) pr.StepResult {
			res, err := sys.Step(id)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		step(adv)
		step(adv)
		// Victim runs until it blocks on d.
		for {
			if res := step(vic); res.Outcome != pr.Progressed {
				break
			}
		}
		// Adversary requests c -> deadlock; the victim (younger) rolls
		// back as far as its structure allows.
		var report *pr.DeadlockReport
		for {
			res := step(adv)
			if res.Outcome == pr.BlockedDeadlock {
				report = res.Deadlock
				break
			}
			if res.Outcome != pr.Progressed {
				log.Fatalf("adversary: unexpected outcome %v", res.Outcome)
			}
		}
		v := report.Victims[0]
		fmt.Printf("victim rolled back to lock state %d (cost %d ops)\n", v.Target, v.Cost)

		// Drain both to commit and verify the database.
		for !sys.AllCommitted() {
			for _, id := range []pr.TxnID{adv, vic} {
				if _, err := sys.Step(id); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("             final a=%d b=%d c=%d d=%d\n\n",
			store.MustGet("a"), store.MustGet("b"), store.MustGet("c"), store.MustGet("d"))
	}
	fmt.Println("scattered writes force rollback to the initial state; clustered and")
	fmt.Println("three-phase structures keep the ideal target (just before LockX(d))")
	fmt.Println("well-defined, so almost no work is lost — §5's structuring principle.")
}
