// Network: the partial-rollback engine as a service. An in-process TCP
// server hosts the database; three clients connect and concurrently run
// transfers around a lock ring (a→b, b→c, c→a), the canonical deadlock.
// The engine detects the cycle and partially rolls one victim back —
// each rollback streams to the owning client as a notification — and
// every transfer still commits, over the wire, with the ring's total
// conserved.
//
// Run with:
//
//	go run ./examples/network [-rounds 5] [-strategy mcs]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	pr "partialrollback"
)

var (
	rounds   = flag.Int("rounds", 5, "transfers per client")
	strategy = flag.String("strategy", "mcs", "rollback strategy: total|mcs|sdg")
	pad      = flag.Int("pad", 3000, "computation between the two locks (bigger = more overlap)")
)

func parseStrategy(s string) pr.Strategy {
	switch s {
	case "total":
		return pr.Total
	case "mcs":
		return pr.MCS
	case "sdg":
		return pr.SDG
	}
	log.Fatalf("unknown strategy %q", s)
	return 0
}

// transfer moves amount from one account to the next, with enough
// computation between the two lock requests that concurrent ring
// neighbours overlap and deadlock.
func transfer(name, from, to string, amount int64) *pr.Program {
	b := pr.NewProgram(name).
		Local("x", 0).Local("y", 0).Local("w", 0).
		LockX(from).
		Read(from, "x")
	for i := 0; i < *pad; i++ {
		b.Compute("w", pr.Add(pr.L("w"), pr.C(1)))
	}
	return b.
		LockX(to).
		Read(to, "y").
		Write(from, pr.Sub(pr.L("x"), pr.C(amount))).
		Write(to, pr.Add(pr.L("y"), pr.C(amount))).
		MustBuild()
}

func main() {
	log.SetFlags(0)
	flag.Parse()

	// The served database: three accounts in a ring.
	store := pr.NewStore(map[string]int64{"a": 100, "b": 100, "c": 100})
	store.AddConstraint(pr.SumConstraint("ring-total", 300, "a", "b", "c"))

	srv := pr.NewServer(pr.ServerConfig{Store: store, Strategy: parseStrategy(*strategy)})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("server on %s (strategy=%s)\n\n", addr, *strategy)

	ring := []struct{ from, to string }{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	var (
		mu        sync.Mutex
		rollbacks int
	)
	var wg sync.WaitGroup
	for i, r := range ring {
		wg.Add(1)
		go func(i int, from, to string) {
			defer wg.Done()
			c := pr.NewClient(pr.ClientConfig{Addr: addr, Seed: int64(i + 1)})
			defer c.Close()
			for k := 0; k < *rounds; k++ {
				name := fmt.Sprintf("xfer-%s%s-%d", from, to, k)
				res, err := c.Run(context.Background(), transfer(name, from, to, 1))
				if err != nil {
					log.Fatalf("client %d: %v", i, err)
				}
				mu.Lock()
				for _, rb := range res.RolledBack {
					rollbacks++
					fmt.Printf("client %d: txn %d rolled back %d→%d (lost %d ops) — deadlock removed\n",
						i, rb.Txn, rb.FromState, rb.ToState, rb.Lost)
				}
				fmt.Printf("client %d: %-14s committed (ops=%d lost=%d waits=%d attempts=%d)\n",
					i, name, res.Outcome.OpsExecuted, res.Outcome.OpsLost, res.Outcome.Waits, res.Attempts)
				mu.Unlock()
			}
		}(i, r.from, r.to)
	}
	wg.Wait()

	fmt.Printf("\n%d rollback notifications received over the wire\n", rollbacks)

	// Server-side view of the same run.
	c := pr.NewClient(pr.ClientConfig{Addr: addr})
	defer c.Close()
	counters, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server counters:")
	for _, cn := range counters {
		if cn.Val != 0 {
			fmt.Printf("  %-18s %d\n", cn.Name, cn.Val)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := store.CheckConsistent(); err != nil {
		log.Fatalf("ring total violated: %v", err)
	}
	fmt.Printf("\nshutdown clean; a=%d b=%d c=%d (total conserved)\n",
		store.MustGet("a"), store.MustGet("b"), store.MustGet("c"))
}
