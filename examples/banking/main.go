// Banking: many concurrent transfers over a small hot set of accounts,
// run with one goroutine per transaction. Compares the three rollback
// strategies on the same workload: the invariant (total balance) always
// holds, but total restart wastes far more work than partial rollback.
//
// Run with:
//
//	go run ./examples/banking [-accounts 8] [-transfers 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	pr "partialrollback"
)

var (
	accounts  = flag.Int("accounts", 8, "number of accounts")
	transfers = flag.Int("transfers", 64, "number of transfer transactions")
	seed      = flag.Int64("seed", 1, "workload seed")
)

// splitTransferProgram moves amount out of one account, splitting it
// between two recipients. Three locks and interest computation between
// them give partial rollback progress worth preserving: a deadlock at
// the second or third lock request often lets the victim keep the work
// done under its earlier locks instead of restarting.
func splitTransferProgram(name, from, to1, to2 string, amount int64) *pr.Program {
	half := amount / 2
	b := pr.NewProgram(name).
		Local("f", 0).Local("t1", 0).Local("t2", 0).Local("interest", 0).
		LockX(from).Read(from, "f")
	for i := 0; i < 4; i++ {
		b.Compute("interest", pr.Add(pr.L("interest"), pr.Mod(pr.L("f"), pr.C(3))))
	}
	b.LockX(to1).Read(to1, "t1")
	for i := 0; i < 4; i++ {
		b.Compute("interest", pr.Add(pr.L("interest"), pr.Mod(pr.L("t1"), pr.C(3))))
	}
	return b.
		LockX(to2).Read(to2, "t2").
		Write(from, pr.Sub(pr.L("f"), pr.C(amount))).
		Write(to1, pr.Add(pr.L("t1"), pr.Add(pr.C(amount), pr.Mul(pr.C(-1), pr.C(half))))).
		Write(to2, pr.Add(pr.L("t2"), pr.C(half))).
		MustBuild()
}

func main() {
	flag.Parse()
	const initBalance = 1000

	names := make([]string, *accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}

	rng := rand.New(rand.NewSource(*seed))
	programs := make([]*pr.Program, 0, *transfers)
	for i := 0; i < *transfers; i++ {
		perm := rng.Perm(*accounts)
		programs = append(programs, splitTransferProgram(
			fmt.Sprintf("xfer%d", i), names[perm[0]], names[perm[1]], names[perm[2]],
			int64(2+2*rng.Intn(10))))
	}

	fmt.Printf("%d transfers over %d accounts, one goroutine each:\n\n", *transfers, *accounts)
	for _, strategy := range []pr.Strategy{pr.Total, pr.MCS, pr.SDG} {
		store := pr.NewUniformStore("acct", *accounts, initBalance)
		store.AddConstraint(pr.SumConstraint("total", int64(*accounts)*initBalance, names...))

		out, err := pr.RunConcurrent(store, programs, pr.RunOptions{
			Strategy:      strategy,
			Policy:        pr.OrderedMinCost{},
			RecordHistory: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := store.CheckConsistent(); err != nil {
			log.Fatalf("%v: invariant broken: %v", strategy, err)
		}
		if _, err := out.System.Recorder().CheckSerializable(); err != nil {
			log.Fatalf("%v: %v", strategy, err)
		}
		s := out.Stats
		fmt.Printf("  %-6v commits=%-3d deadlocks=%-3d rollbacks=%-3d restarts=%-3d ops lost=%d\n",
			strategy, s.Commits, s.Deadlocks, s.Rollbacks, s.Restarts, s.OpsLost)
	}
	fmt.Println("\nall runs kept the balance invariant and were conflict-serializable;")
	fmt.Println("partial rollback (mcs/sdg) resolves the same deadlocks while discarding less work.")
	fmt.Println("(goroutine scheduling varies between runs, so counts differ run to run.)")
}
