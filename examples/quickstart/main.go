// Quickstart: two transfer transactions that deadlock; the system
// detects the cycle and resolves it with a partial rollback instead of
// restarting the victim.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pr "partialrollback"
)

func main() {
	// A database of two accounts with a sum invariant.
	store := pr.NewStore(map[string]int64{"checking": 100, "savings": 200})
	store.AddConstraint(pr.SumConstraint("total", 300, "checking", "savings"))

	// The engine: multi-copy partial rollback, Theorem 2-safe victim
	// policy, with history recording so we can verify serializability.
	sys := pr.New(pr.Config{
		Store:         store,
		Strategy:      pr.MCS,
		Policy:        pr.OrderedMinCost{},
		RecordHistory: true,
		OnEvent: func(e pr.Event) {
			fmt.Println("  event:", e)
		},
	})

	// Two transfers that lock the accounts in opposite orders — the
	// classic deadlock.
	toSavings := pr.NewProgram("to-savings").
		Local("c", 0).Local("s", 0).
		LockX("checking").Read("checking", "c").
		LockX("savings").Read("savings", "s").
		Write("checking", pr.Sub(pr.L("c"), pr.C(25))).
		Write("savings", pr.Add(pr.L("s"), pr.C(25))).
		MustBuild()
	toChecking := pr.NewProgram("to-checking").
		Local("c", 0).Local("s", 0).
		LockX("savings").Read("savings", "s").
		LockX("checking").Read("checking", "c").
		Write("savings", pr.Sub(pr.L("s"), pr.C(10))).
		Write("checking", pr.Add(pr.L("c"), pr.C(10))).
		MustBuild()

	t1 := sys.MustRegister(toSavings)
	t2 := sys.MustRegister(toChecking)

	// Drive both round-robin, one atomic operation at a time.
	fmt.Println("stepping both transactions round-robin:")
	for !sys.AllCommitted() {
		for _, id := range []pr.TxnID{t1, t2} {
			res, err := sys.Step(id)
			if err != nil {
				log.Fatal(err)
			}
			if res.Outcome == pr.BlockedDeadlock {
				fmt.Printf("  -> deadlock resolved: %v\n", res.Deadlock)
			}
		}
	}

	fmt.Printf("\nfinal: checking=%d savings=%d\n",
		store.MustGet("checking"), store.MustGet("savings"))
	if err := store.CheckConsistent(); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Recorder().CheckSerializable(); err != nil {
		log.Fatal(err)
	}
	order, _ := sys.Recorder().SerialOrder()
	fmt.Printf("consistent and conflict-serializable (equivalent serial order %v)\n", order)
	st := sys.Stats()
	fmt.Printf("deadlocks=%d rollbacks=%d ops lost=%d (a total restart would have lost the victim's entire progress)\n",
		st.Deadlocks, st.Rollbacks, st.OpsLost)
}
