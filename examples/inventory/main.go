// Inventory: order processing with shared and exclusive locks. Pricing
// transactions read catalog entries under shared locks while order
// transactions exclusively update stock levels — the §3.2 setting where
// one exclusive request can close several deadlock cycles at once and
// victim selection becomes a vertex-cut problem.
//
// Run with:
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"

	pr "partialrollback"
)

// orderProgram reserves qty units of two items (exclusive) after
// checking the catalog price (shared).
func orderProgram(name, itemA, itemB string, qty int64) *pr.Program {
	return pr.NewProgram(name).
		Local("pa", 0).Local("pb", 0).Local("sa", 0).Local("sb", 0).
		LockS("price:"+itemA).Read("price:"+itemA, "pa").
		LockX("stock:"+itemA).Read("stock:"+itemA, "sa").
		LockS("price:"+itemB).Read("price:"+itemB, "pb").
		LockX("stock:"+itemB).Read("stock:"+itemB, "sb").
		Write("stock:"+itemA, pr.Sub(pr.L("sa"), pr.C(qty))).
		Write("stock:"+itemB, pr.Sub(pr.L("sb"), pr.C(qty))).
		MustBuild()
}

// repriceProgram rewrites an item's catalog price from its stock level
// (exclusive on the price, shared reads elsewhere).
func repriceProgram(name, item string) *pr.Program {
	return pr.NewProgram(name).
		Local("s", 0).Local("p", 0).
		LockS("stock:"+item).Read("stock:"+item, "s").
		LockX("price:"+item).Read("price:"+item, "p").
		Write("price:"+item, pr.Add(pr.L("p"), pr.Mod(pr.L("s"), pr.C(5)))).
		MustBuild()
}

// auditProgram reads every item's stock under shared locks.
func auditProgram(name string, items []string) *pr.Program {
	b := pr.NewProgram(name).Local("sum", 0).Local("v", 0)
	for _, it := range items {
		b.LockS("stock:"+it).
			Read("stock:"+it, "v").
			Compute("sum", pr.Add(pr.L("sum"), pr.L("v")))
	}
	return b.MustBuild()
}

func main() {
	items := []string{"widget", "gadget", "sprocket", "doohickey"}
	initial := map[string]int64{}
	for _, it := range items {
		initial["stock:"+it] = 100
		initial["price:"+it] = 10
	}
	store := pr.NewStore(initial)

	var programs []*pr.Program
	// Orders lock item pairs in clashing orders.
	programs = append(programs,
		orderProgram("order1", "widget", "gadget", 3),
		orderProgram("order2", "gadget", "widget", 2),
		orderProgram("order3", "sprocket", "doohickey", 5),
		orderProgram("order4", "doohickey", "sprocket", 1),
		orderProgram("order5", "widget", "sprocket", 4),
	)
	for _, it := range items {
		programs = append(programs, repriceProgram("reprice-"+it, it))
	}
	programs = append(programs,
		auditProgram("audit1", items),
		auditProgram("audit2", items),
	)

	deadlocks := 0
	multiCycle := 0
	sys := pr.New(pr.Config{
		Store:         store,
		Strategy:      pr.SDG, // single-copy: no extra storage over total restart
		Policy:        pr.OrderedMinCost{},
		RecordHistory: true,
		OnEvent: func(e pr.Event) {
			if e.Deadlock != nil {
				deadlocks++
				if len(e.Deadlock.Cycles) > 1 {
					multiCycle++
				}
				fmt.Printf("  deadlock: %v\n", e.Deadlock)
			}
		},
	})

	var ids []pr.TxnID
	for _, p := range programs {
		ids = append(ids, sys.MustRegister(p))
	}

	fmt.Println("running orders, repricers, and audits round-robin:")
	for !sys.AllCommitted() {
		for _, id := range ids {
			if _, err := sys.Step(id); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\nfinal stock and prices:")
	for _, it := range items {
		fmt.Printf("  %-10s stock=%3d price=%d\n", it,
			store.MustGet("stock:"+it), store.MustGet("price:"+it))
	}
	if _, err := sys.Recorder().CheckSerializable(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("\nconflict-serializable; deadlocks=%d (multi-cycle: %d) rollbacks=%d ops lost=%d\n",
		st.Deadlocks, multiCycle, st.Rollbacks, st.OpsLost)
	_ = deadlocks
}
