module partialrollback

go 1.22
