// Package partialrollback is a Go implementation of the deadlock-removal
// scheme of Fussell, Kedem & Silberschatz, "Deadlock Removal Using
// Partial Rollback in Database Systems" (SIGMOD 1981): a two-phase
// locking concurrency control that, instead of aborting and restarting
// a deadlock victim, rolls it back only to the latest state at which it
// no longer holds a contested lock.
//
// The package is a facade over the implementation packages and is the
// supported public API:
//
//   - build transaction programs with NewProgram (a fluent Builder over
//     lock/read/write/compute operations and an integer expression
//     language: C, L, Add, Sub, Mul, ...);
//   - create a database with NewStore and a System with New, choosing a
//     rollback Strategy (Total restart, the multi-copy MCS, or the
//     single-copy SDG guided by the state-dependency graph) and a
//     victim Policy (MinCost, OrderedMinCost, Requester, ...);
//   - drive execution yourself one operation at a time with
//     System.Step, or run a batch of transactions concurrently, one
//     goroutine each, with Run.
//
// See README.md for a walkthrough, DESIGN.md for the paper-to-code map,
// and EXPERIMENTS.md for the reproduced results.
package partialrollback

import (
	"io"

	"partialrollback/internal/client"
	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/optimizer"
	"partialrollback/internal/runtime"
	"partialrollback/internal/server"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
	"partialrollback/internal/wal"
)

// Core engine types.
type (
	// Engine is the concurrency-control surface shared by the
	// single-shard System and the sharded engine (NewSharded): every
	// driver in this package accepts either.
	Engine = core.Engine
	// System is the concurrency control.
	System = core.System
	// ShardedEngine partitions the engine into independent shards
	// (per-shard lock table, wait-for graph and deadlock detection)
	// with conflict-driven entity placement, so transactions over
	// disjoint entities execute in parallel.
	ShardedEngine = shard.Engine
	// Config configures a System.
	Config = core.Config
	// Strategy selects the rollback implementation.
	Strategy = core.Strategy
	// Prevention selects an optional timestamp rule (§3.3).
	Prevention = core.Prevention
	// Stats holds system-wide counters.
	Stats = core.Stats
	// TxnStats holds per-transaction counters.
	TxnStats = core.TxnStats
	// StepResult reports one Step.
	StepResult = core.StepResult
	// Outcome classifies a Step.
	Outcome = core.Outcome
	// Event is an engine occurrence.
	Event = core.Event
	// DeadlockReport describes one resolved deadlock.
	DeadlockReport = core.DeadlockReport
	// Status is a transaction's execution status.
	Status = core.Status
)

// Rollback strategies (§4, plus the paper's closing extension).
const (
	// Total restarts victims from scratch — the classical baseline.
	Total = core.Total
	// MCS keeps per-lock-state value stacks; rollback to any lock state.
	MCS = core.MCS
	// SDG keeps one copy per entity; rollback to well-defined states.
	SDG = core.SDG
	// Hybrid is SDG plus a bounded budget of checkpoints (extra copies)
	// that make chosen lock states restorable (Config.HybridBudget).
	Hybrid = core.Hybrid
)

// Prevention modes (§3.3).
const (
	NoPrevention = core.NoPrevention
	WoundWait    = core.WoundWait
	WaitDie      = core.WaitDie
)

// Step outcomes.
const (
	Progressed       = core.Progressed
	Blocked          = core.Blocked
	BlockedDeadlock  = core.BlockedDeadlock
	StillWaiting     = core.StillWaiting
	Committed        = core.Committed
	AlreadyCommitted = core.AlreadyCommitted
	SelfRolledBack   = core.SelfRolledBack
)

// Transaction statuses.
const (
	StatusRunning   = core.StatusRunning
	StatusWaiting   = core.StatusWaiting
	StatusCommitted = core.StatusCommitted
)

// New creates a System over store.
func New(cfg Config) *System { return core.New(cfg) }

// NewSharded creates an engine of n shards configured from cfg — same
// semantics as a single System (conflicting transactions are co-located
// on one shard, so deadlock removal by partial rollback applies
// unchanged), but lock traffic on disjoint entities runs in parallel.
// n = 1 behaves exactly like New.
func NewSharded(n int, cfg Config) *ShardedEngine { return shard.New(n, cfg) }

// Transaction programs.
type (
	// Program is an immutable transaction template.
	Program = txn.Program
	// Builder assembles a Program.
	Builder = txn.Builder
	// Op is one atomic operation.
	Op = txn.Op
	// TxnID identifies a registered transaction.
	TxnID = txn.ID
)

// NewProgram starts building a transaction program.
func NewProgram(name string) *Builder { return txn.NewProgram(name) }

// Validate checks a program against the model's static rules.
func Validate(p *Program) error { return txn.Validate(p) }

// IsThreePhase reports whether a program has §5's three-phase form.
func IsThreePhase(p *Program) bool { return txn.IsThreePhase(p) }

// Database store.
type (
	// Store is the global entity map.
	Store = entity.Store
	// Constraint is a consistency predicate over the database.
	Constraint = entity.Constraint
)

// NewStore creates a store with the given initial entity values.
func NewStore(initial map[string]int64) *Store { return entity.NewStore(initial) }

// NewUniformStore creates n entities "<prefix>0".."<prefix>n-1" = init.
func NewUniformStore(prefix string, n int, init int64) *Store {
	return entity.NewUniformStore(prefix, n, init)
}

// PagedConfig configures the paged (beyond-RAM) store backend: a heap
// file of fixed-size pages plus a bounded pinning buffer pool.
type PagedConfig = entity.PagedConfig

// NewPagedStore creates a store over the paged backend; the entity set
// may exceed RAM. Close the store on shutdown.
func NewPagedStore(initial map[string]int64, cfg PagedConfig) (*Store, error) {
	return entity.NewPagedStore(initial, cfg)
}

// SumConstraint asserts the listed entities always sum to want.
func SumConstraint(name string, want int64, entities ...string) Constraint {
	return entity.SumConstraint(name, want, entities...)
}

// Victim-selection policies (§3).
type (
	// Policy chooses deadlock victims.
	Policy = deadlock.Policy
	// Victim is one rollback decision.
	Victim = deadlock.Victim
	// MinCost picks the cheapest cycle-breaking victim set (Figure 1);
	// subject to potentially infinite mutual preemption (Figure 2).
	MinCost = deadlock.MinCost
	// OrderedMinCost restricts victims per Theorem 2's entry order;
	// immune to mutual preemption. The default.
	OrderedMinCost = deadlock.OrderedMinCost
	// Requester always rolls back the conflict causer.
	Requester = deadlock.Requester
	// Youngest rolls back latest-entry participants first.
	Youngest = deadlock.Oldest
)

// Expression language for Write/Compute operations.
type Expr = value.Expr

// Expression constructors.
var (
	// C is a constant; L references a local variable.
	C = value.C
	L = value.L
	// Arithmetic over locals and constants.
	Add = value.Add
	Sub = value.Sub
	Mul = value.Mul
	Div = value.Div
	Mod = value.Mod
	Min = value.Min
	Max = value.Max
)

// Hybrid-strategy checkpoint allocators (paper's closing question).
type (
	// CheckpointAllocator chooses which lock states the Hybrid strategy
	// checkpoints within its budget.
	CheckpointAllocator = hybrid.Allocator
	// MinGapAllocator greedily repairs the destroyed states that most
	// reduce expected rollback overshoot. The default.
	MinGapAllocator = hybrid.MinGap
	// SpacedAllocator spreads checkpoints evenly over destroyed states.
	SpacedAllocator = hybrid.Spaced
)

// OptimizeResult reports a ClusterWrites transformation.
type OptimizeResult = optimizer.Result

// ClusterWrites rewrites a program so its writes execute as late as
// data dependencies allow (§5's compile-time optimization): the
// transformed program keeps every lock state well-defined under the
// single-copy strategy whenever the dependencies permit, and is
// verified-equivalent in meaning (see optimizer.Equivalent).
func ClusterWrites(p *Program) (OptimizeResult, error) {
	return optimizer.ClusterWrites(p)
}

// Write-ahead logging (durability substrate; see internal/wal).
type (
	// WALWriter appends checksummed install records to an io.Writer.
	WALWriter = wal.Writer
	// WALRecord is one logged installation.
	WALRecord = wal.Record
)

// NewWALWriter creates a log writer starting at sequence nextSeq (1 for
// a fresh log). Attach it to a Store with WALWriter.Attach so every
// committed value is logged before it becomes visible.
func NewWALWriter(w io.Writer, nextSeq uint64) *WALWriter {
	return wal.NewWriter(w, nextSeq)
}

// RecoverWAL replays a log over a store holding the initial database
// state; see wal.Recover for the damage-handling contract.
func RecoverWAL(r io.Reader, store *Store) (applied int, nextSeq uint64, damage error) {
	return wal.Recover(r, store)
}

// RunOptions configures RunConcurrent.
type RunOptions = runtime.Options

// RunOutcome reports a completed concurrent run.
type RunOutcome = runtime.Outcome

// RunConcurrent executes the programs against store with one goroutine
// per transaction, blocking until every transaction commits.
func RunConcurrent(store *Store, programs []*Program, opt RunOptions) (*RunOutcome, error) {
	return runtime.Run(store, programs, opt)
}

// Network transaction service: serve a System over TCP and submit
// programs to it remotely (internal/server, internal/client; the wire
// protocol is documented in internal/wire). cmd/prserver and cmd/prload
// are ready-made binaries over the same API.
type (
	// ServerConfig configures a network Server.
	ServerConfig = server.Config
	// Server serves transaction programs over TCP: Listen, then
	// Shutdown to drain.
	Server = server.Server
	// ClientConfig configures a network Client.
	ClientConfig = client.Config
	// Client submits programs to a Server, re-running them with
	// jittered backoff when the server rolls them back. Not safe for
	// concurrent use; run one per goroutine.
	Client = client.Client
	// ClientResult reports a transaction the server committed.
	ClientResult = client.Result
)

// NewServer creates a network transaction server around a fresh engine.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewClient creates a network client. No connection is made until the
// first request.
func NewClient(cfg ClientConfig) *Client { return client.New(cfg) }

// ErrRolledBack matches client errors whose server code is retryable
// (the transaction was rolled back or refused transiently).
var ErrRolledBack = client.ErrRolledBack
