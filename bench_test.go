// Benchmarks regenerating every figure and experiment of EXPERIMENTS.md
// (one per paper artifact; DESIGN.md §4 maps IDs to paper sections).
// Run with:
//
//	go test -bench=. -benchmem
package partialrollback_test

import (
	"testing"

	pr "partialrollback"
	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/experiments"
	"partialrollback/internal/lock"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// BenchmarkE1Figure1 regenerates Figure 1: exclusive-lock deadlock,
// cost-optimal victim (costs 4/6/5, victim T2).
func BenchmarkE1Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.E1Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if res.Victim != 2 {
			b.Fatalf("victim T%d", res.Victim)
		}
	}
}

// BenchmarkE2Figure2 regenerates Figure 2: mutual preemption under
// min-cost vs the Theorem 2 ordered policy.
func BenchmarkE2Figure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E2Figure2(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Figure3 regenerates Figure 3's three shared/exclusive
// scenarios.
func BenchmarkE3Figure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Figure4 regenerates Figure 4: state-dependency graph and
// well-defined states.
func BenchmarkE4Figure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E4Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Figure5 regenerates Figure 5: clustered writes vs
// scattered writes.
func BenchmarkE5Figure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E5Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Forest runs the Theorem 1 forest-property sweep.
func BenchmarkE6Forest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E6Forest(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7MCSBound measures Theorem 3's n(n+1)/2 space bound.
func BenchmarkE7MCSBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E7MCSBound([]int{4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.EntityElems != r.EntityBound {
				b.Fatalf("bound not tight at n=%d", r.N)
			}
		}
	}
}

// BenchmarkE8Cutset compares exact and greedy vertex cuts (§3.2's
// NP-complete victim optimization).
func BenchmarkE8Cutset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E8Cutset([]int{4, 8, 12}, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Strategies runs the lost-progress comparison across
// strategies and contention levels.
func BenchmarkE9Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E9Strategies(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Structure runs the §5 write-placement sweep under the
// single-copy strategy.
func BenchmarkE10Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E10Structure(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Distributed runs the §3.3 multi-site wound-wait sweep.
func BenchmarkE11Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E11Distributed(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Avoidance runs the avoidance-baseline comparison.
func BenchmarkE12Avoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E12Avoidance(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Hybrid runs the bounded-extra-copies sweep (the paper's
// closing question).
func BenchmarkE13Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E13Hybrid(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14Optimizer runs the compile-time clustering comparison.
func BenchmarkE14Optimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E14Optimizer(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15MessagePassing runs the fully distributed message-passing
// sweep.
func BenchmarkE15MessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E15MessagePassing(42); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the engine itself.

// BenchmarkStepThroughput measures raw engine throughput: operations
// per second on a moderately contended workload, per strategy.
func BenchmarkStepThroughput(b *testing.B) {
	for _, st := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		b.Run(st.String(), func(b *testing.B) {
			w := sim.Generate(sim.GenConfig{
				Txns: 16, DBSize: 32, HotSet: 8, HotProb: 0.7,
				LocksPerTxn: 5, RewriteProb: 0.3, Shape: sim.Mixed, Seed: 9,
			})
			b.ResetTimer()
			var ops int64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(w, sim.RunConfig{
					Strategy: st, Policy: deadlock.OrderedMinCost{},
					Scheduler: sim.RoundRobin, Seed: 9,
				})
				if err != nil {
					b.Fatal(err)
				}
				ops += r.TotalOps
			}
			b.ReportMetric(float64(ops)/float64(b.N), "ops/run")
		})
	}
}

// BenchmarkDeadlockResolution measures the cost of one
// detect-and-resolve round trip (the Figure 1 scenario end to end).
func BenchmarkDeadlockResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := pr.NewStore(map[string]int64{"x": 0, "y": 0})
		sys := pr.New(pr.Config{Store: store, Strategy: pr.MCS})
		t1 := sys.MustRegister(pr.NewProgram("a").Local("v", 0).LockX("x").LockX("y").MustBuild())
		t2 := sys.MustRegister(pr.NewProgram("b").Local("v", 0).LockX("y").LockX("x").MustBuild())
		mustStep(b, sys, t1)     // t1 locks x
		mustStep(b, sys, t2)     // t2 locks y
		mustStep(b, sys, t1)     // t1 waits y
		res, err := sys.Step(t2) // t2 requests x -> deadlock
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != pr.BlockedDeadlock && res.Outcome != pr.Progressed {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}

func mustStep(b *testing.B, sys *pr.System, id pr.TxnID) {
	b.Helper()
	if _, err := sys.Step(id); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkConcurrentRuntime measures the goroutine driver on the
// banking workload.
func BenchmarkConcurrentRuntime(b *testing.B) {
	w := sim.BankingWorkload(8, 32, 1000, 5)
	for i := 0; i < b.N; i++ {
		store := w.NewStore()
		if _, err := pr.RunConcurrent(store, w.Programs, pr.RunOptions{Strategy: pr.MCS}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBookkeepingOverhead isolates the per-operation cost of each
// strategy's rollback bookkeeping on an uncontended single transaction
// — §4's claim that maintaining the state-dependency graph is cheap,
// versus MCS's stack pushes and Total's absence of monitoring.
func BenchmarkBookkeepingOverhead(b *testing.B) {
	prog := func() *pr.Program {
		bld := pr.NewProgram("bench").Local("v", 0).Local("acc", 0)
		for k := 0; k < 8; k++ {
			e := entityName(k)
			bld.LockX(e).Read(e, "v")
			for w := 0; w < 4; w++ {
				bld.Compute("acc", pr.Add(pr.L("acc"), pr.L("v"))).
					Write(e, pr.Add(pr.L("v"), pr.C(1)))
			}
		}
		return bld.MustBuild()
	}()
	for _, st := range []core.Strategy{core.Total, core.SDG, core.MCS, core.Hybrid} {
		b.Run(st.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := pr.NewUniformStore("e", 8, 0)
				sys := pr.New(pr.Config{Store: store, Strategy: st, HybridBudget: 4})
				id := sys.MustRegister(prog)
				for {
					res, err := sys.Step(id)
					if err != nil {
						b.Fatal(err)
					}
					if res.Outcome == pr.Committed {
						break
					}
				}
			}
			b.ReportMetric(float64(len(prog.Ops)), "ops/txn")
		})
	}
}

func entityName(k int) string {
	return string(rune('e')) + string(rune('0'+k))
}

// BenchmarkLockTable measures raw lock-table acquire/release cycles.
func BenchmarkLockTable(b *testing.B) {
	tab := lock.NewTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := txn.ID(i%64 + 1)
		name := entityName(i % 8)
		if granted, _, err := tab.Acquire(id, name, lock.Exclusive); err == nil && granted {
			if _, err := tab.Release(id, name); err != nil {
				b.Fatal(err)
			}
		} else if _, w := tab.WaitingOn(id); w {
			tab.RemoveWaiter(id, name)
		}
	}
}

// BenchmarkCycleDetection measures wait-for cycle search on a graph the
// size of a busy system.
func BenchmarkCycleDetection(b *testing.B) {
	g := waitfor.New()
	for i := 1; i <= 64; i++ {
		g.AddTxn(txn.ID(i))
	}
	// A long chain plus side edges; the probe vertex closes nothing.
	for i := 1; i < 64; i++ {
		g.AddWait(txn.ID(i), txn.ID(i+1), "e")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.CyclesThrough(1, 4); len(got) != 0 {
			b.Fatal("unexpected cycle")
		}
	}
}
