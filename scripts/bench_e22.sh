#!/usr/bin/env sh
# E22 intra-shard parallelism sweep: served throughput as a function of
# GOMAXPROCS x stripes. For each cell the server is started with the
# given GOMAXPROCS (pinning how many OS threads may run engine code)
# and -stripes (1 = the classic single-mutex engine, >1 = striped lock
# table with the CAS shared fast path), the same seeded hotspot load is
# driven through the v3 multiplexed protocol, and the client's -json
# report supplies throughput and latency.
#
# The claim is conditional on cores: with GOMAXPROCS=1 every cell must
# be parity (striping buys nothing without parallelism — and must cost
# nothing); with more cores the striped cells pull ahead of stripes=1
# as uncontended steps stop serializing on the engine mutex. On a
# single-core container the whole table is parity; the committed
# BENCH_E22.json records which case the run machine was. Run from the
# repository root:
#
#   ./scripts/bench_e22.sh [outdir]
set -eu

OUT=${1:-/tmp/bench_e22}
GMPS=${GMPS:-"1 2 4"}
STRIPES=${STRIPES:-"1 8"}
CLIENTS=${CLIENTS:-16}
TXNS=${TXNS:-150}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

NUMCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

start_server() {
    # start_server <gomaxprocs> <stripes> <log>; sets $spid and $addr.
    slog=$3
    GOMAXPROCS=$1 "$OUT/prserver" -addr 127.0.0.1:0 \
        -entities 64 -accounts 0 -shards 1 -stripes "$2" -burst -1 \
        >"$slog" 2>&1 &
    spid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$slog")
        [ -n "$addr" ] && break
        kill -0 "$spid" 2>/dev/null || { cat "$slog"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$slog"; exit 1; }
}

json_num() {
    # json_num <file> <key>: pull a numeric field from a pretty-printed
    # prload report.
    sed -n "s/.*\"$2\": \([0-9.]*\),*\$/\1/p" "$1" | head -1
}

rows=""
for gmp in $GMPS; do
    for s in $STRIPES; do
        label="gmp${gmp}_s${s}"
        start_server "$gmp" "$s" "$OUT/server_$label.log"
        "$OUT/prload" -addr "$addr" -workload hotspot \
            -db 64 -hot 8 -hotprob 0.6 -locks 4 -pad 2 \
            -clients "$CLIENTS" -txns "$TXNS" -proto 3 -conns 4 -seed 22 \
            -json "$OUT/report_$label.json" \
            >"$OUT/load_$label.log" 2>&1
        kill "$spid" 2>/dev/null || true
        wait "$spid" 2>/dev/null || true

        rep="$OUT/report_$label.json"
        tput=$(json_num "$rep" throughputTxnPerSec)
        p50=$(json_num "$rep" latencyP50Ms)
        p99=$(json_num "$rep" latencyP99Ms)
        committed=$(json_num "$rep" committed)
        lost=$(json_num "$rep" opsLost)
        echo "$label: throughput=${tput} txn/s p50=${p50}ms p99=${p99}ms committed=$committed opsLost=$lost"
        rows="$rows{\"gomaxprocs\":$gmp,\"stripes\":$s,\"throughput_txn_s\":$tput,\"p50_ms\":$p50,\"p99_ms\":$p99,\"committed\":$committed,\"ops_lost\":$lost},"
    done
done

rows=${rows%,}
cat >"$OUT/BENCH_E22.json" <<EOF
{
 "id": "E22",
 "title": "Intra-shard parallelism: throughput vs GOMAXPROCS x lock-table stripes",
 "method": {
  "workload": "hotspot db=64 hot=8 hotprob=0.6 locks=4 pad=2 clients=$CLIENTS txns/client=$TXNS proto=3 conns=4 seed=22",
  "server": "prserver -entities 64 -accounts 0 -shards 1 -stripes {$STRIPES} -burst -1, GOMAXPROCS in {$GMPS}",
  "machine_cpus": $NUMCPU,
  "note": "stripes=1 is the classic single-mutex engine; striped cells route uncontended steps through the engine read lock (shared grants one CAS). With GOMAXPROCS=1, and on any single-core machine, every cell is expected to be parity — the striped engine must not cost throughput. The scaling claim (striped > stripes=1 at equal GOMAXPROCS) only applies when machine_cpus > 1; see EXPERIMENTS.md E22."
 },
 "rows": [$rows]
}
EOF
echo "wrote $OUT/BENCH_E22.json"
