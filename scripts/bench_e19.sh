#!/usr/bin/env sh
# E19 durability sweep: hotspot throughput at 64 concurrent clients
# under every fsync discipline, on the native device and under an
# emulated classical disk (-fsync-delay adds a calibrated barrier
# latency after each fsync). Configurations:
#
#   wal=off                          (memory-only baseline; must stay
#                                     within noise of BENCH_E18)
#   fsync=off                        (write-through, no fsync)
#   fsync=always, delay in {0, 2ms}  (forced log: one fsync per commit)
#   fsync=group,  delay in {0, 2ms}, window in {0, 1ms, 2ms, 5ms}
#
# The group-vs-always ratio is the tentpole claim: at 64 clients a
# group flush carries up to 64 commits per fsync, so the ratio tracks
# how much of the commit path the fsync dominates. On this container's
# ~120us virtio fsync the native ratio is modest; the 2ms emulated
# barrier shows the classical-disk regime. Trials are interleaved so
# drift hits all configurations alike. Run from the repository root:
#
#   ./scripts/bench_e19.sh [outdir]
#
# The committed BENCH_E19.json records one such run (see EXPERIMENTS.md,
# E19). Numbers are machine-dependent — only ratios measured
# back-to-back on one machine are meaningful.
set -eu

OUT=${1:-/tmp/bench_e19}
TRIALS=${TRIALS:-3}
CLIENTS=${CLIENTS:-64}
TXNS=${TXNS:-100}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

run_one() {
    # run_one <label> <trial> <server-args...>
    label=$1; trial=$2; shift 2
    wal="$OUT/wal_${label}_r${trial}"
    rm -rf "$wal"
    "$OUT/prserver" -addr 127.0.0.1:0 -strategy mcs -entities 64 \
        -accounts 16 -shards 1 -burst 16 "$@" \
        >"$OUT/server_${label}_r${trial}.log" 2>&1 &
    spid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' \
            "$OUT/server_${label}_r${trial}.log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    f="$OUT/${label}_r${trial}.json"
    "$OUT/prload" -addr "$addr" -clients "$CLIENTS" -txns "$TXNS" \
        -workload hotspot -db 64 -hot 8 -hotprob 0.8 -locks 4 \
        -seed 1 -proto 2 -json "$f" >/dev/null
    kill $spid 2>/dev/null || true
    wait $spid 2>/dev/null || true
    echo "$label trial=$trial:" \
        "$(grep -o '"throughputTxnPerSec": [0-9.]*' "$f")" \
        "$(grep -o '"wal_fsync_batches": [0-9]*' "$f" || true)"
}

t=1
while [ "$t" -le "$TRIALS" ]; do
    run_one mem "$t"
    run_one syncoff "$t" -wal "$OUT/wal_syncoff_r$t" -fsync off
    for delay in 0s 2ms; do
        run_one "always_d${delay}" "$t" \
            -wal "$OUT/wal_always_d${delay}_r$t" -fsync always -fsync-delay "$delay"
        for win in -1ms 1ms 2ms 5ms; do
            run_one "group_d${delay}_w${win}" "$t" \
                -wal "$OUT/wal_group_d${delay}_w${win}_r$t" -fsync group \
                -group-window "$win" -fsync-delay "$delay"
        done
    done
    t=$((t + 1))
done

echo "results in $OUT"
