#!/usr/bin/env sh
# Paged-store smoke test: the fast bounded-memory gate. Start prserver
# on the paged backend with an entity set ~17x the buffer pool (512
# entities over 15-slot pages = 35 pages through a 2-frame pool), drive
# uniform counter increments across all of it, and assert:
#
#   1. every acknowledged commit is accounted for (exact sum check —
#      the backend must be correct while evicting constantly);
#   2. the pool actually evicted (the run genuinely ran out-of-core);
#   3. -store mem on the same workload still works (default unharmed).
#
# Run from the repository root:
#
#   ./scripts/smoke_paged.sh
set -eu

workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/prserver" ./cmd/prserver
go build -o "$workdir/prload" ./cmd/prload

start_server() {
    log=$1
    shift
    "$workdir/prserver" -addr 127.0.0.1:0 -accounts 0 -burst 8 "$@" \
        >"$log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$log")
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$log"; exit 1; }
}

# Paged run: entity set far beyond the pool.
start_server "$workdir/server_paged.log" \
    -store paged -pool-pages 2 -page-size 128 -entities 512 \
    -heap "$workdir/heap.dat"
echo "paged server on $addr"

"$workdir/prload" -addr "$addr" -workload counter -entities 512 \
    -clients 8 -txns 500 -proto 2 -seed 3 >"$workdir/load_paged.log" 2>&1 || {
    cat "$workdir/load_paged.log"; exit 1; }

COMMITTED=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load_paged.log")
[ -n "$COMMITTED" ] && [ "$COMMITTED" -ge 4000 ] || {
    echo "paged run committed only ${COMMITTED:-0} of 4000"; cat "$workdir/load_paged.log"; exit 1; }

# The loader echoes the server's store counters; the run must have hit
# the disk (misses) and recycled frames (evictions) to be a real
# out-of-core test.
grep '^store: paged' "$workdir/load_paged.log" || {
    echo "loader did not report the paged backend"; cat "$workdir/load_paged.log"; exit 1; }
evictions=$(sed -n 's/.* evictions=\([0-9]*\).*/\1/p' "$workdir/load_paged.log")
[ -n "$evictions" ] && [ "$evictions" -gt 0 ] || {
    echo "no evictions: pool (2 pages) somehow held 35 pages"; cat "$workdir/load_paged.log"; exit 1; }

# Exact accounting across the full entity range while the pool churns.
"$workdir/prload" -addr "$addr" -workload counter -entities 512 \
    -verify-sum-min "$COMMITTED" -proto 2

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q 'store consistent' "$workdir/server_paged.log" || {
    echo "paged server shutdown unclean"; cat "$workdir/server_paged.log"; exit 1; }

# Control: the default memory backend on the same workload.
start_server "$workdir/server_mem.log" -entities 512
echo "mem server on $addr"
"$workdir/prload" -addr "$addr" -workload counter -entities 512 \
    -clients 8 -txns 100 -proto 2 -seed 4 >"$workdir/load_mem.log" 2>&1 || {
    cat "$workdir/load_mem.log"; exit 1; }
if grep -q '^store: paged' "$workdir/load_mem.log"; then
    echo "-store mem reported paged counters"; exit 1
fi
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "paged smoke test passed: $COMMITTED commits exact over 512 entities through a 2-page pool ($evictions evictions)"
