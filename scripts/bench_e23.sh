#!/usr/bin/env sh
# E23 beyond-RAM entity storage: bounded memory and throughput parity.
#
# Cell 1 (bounded memory): a paged-store server whose entity set spans
# ~12x its buffer pool (100000 entities = 199 pages of 504 slots,
# pool 16 pages) serves a uniform counter load touching all of it. The
# Go heap (pr_runtime_heap_alloc_bytes, runtime.ReadMemStats) is
# sampled through the run — it must plateau at the pool size, not grow
# with the entity set — and the acknowledged-commit sum is verified
# exactly afterward. GOMEMLIMIT pins the GC so heap samples are
# comparable across machines.
#
# Cell 2 (RAM-resident parity): the E22 hotspot config (64 entities =
# one page, pool 64 pages, i.e. pool >> working set) run against
# -store mem and -store paged; once resident, the paged backend must be
# within ~10% of the memory backend.
#
# Run from the repository root:
#
#   ./scripts/bench_e23.sh [outdir]
set -eu

OUT=${1:-/tmp/bench_e23}
ENTITIES=${ENTITIES:-100000}
POOL=${POOL:-16}
CLIENTS=${CLIENTS:-16}
TXNS=${TXNS:-500}
PAR_TXNS=${PAR_TXNS:-150}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

NUMCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

start_server() {
    # start_server <log> [flags...]; sets $spid, $addr, $admin_addr.
    slog=$1
    shift
    GOMEMLIMIT=${GOMEMLIMIT:-256MiB} "$OUT/prserver" -addr 127.0.0.1:0 \
        -admin 127.0.0.1:0 -accounts 0 -burst -1 "$@" \
        >"$slog" 2>&1 &
    spid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$slog")
        [ -n "$addr" ] && break
        kill -0 "$spid" 2>/dev/null || { cat "$slog"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$slog"; exit 1; }
    admin_addr=$(sed -n 's/^prserver: admin on http:\/\/\([^ ]*\) .*/\1/p' "$slog")
}

json_num() {
    sed -n "s/.*\"$2\": \([0-9.]*\),*\$/\1/p" "$1" | head -1
}

heap_sample() {
    # One pr_runtime_heap_alloc_bytes sample off the admin endpoint.
    curl -s "http://$admin_addr/metrics?format=json" 2>/dev/null |
        sed -n 's/.*"pr_runtime_heap_alloc_bytes": *\([0-9]*\).*/\1/p' | head -1
}

HAVE_CURL=0
command -v curl >/dev/null 2>&1 && HAVE_CURL=1

# ---- Cell 1: bounded memory over an out-of-core entity set ----------
start_server "$OUT/server_paged.log" \
    -store paged -pool-pages "$POOL" -page-size 4096 \
    -heap "$OUT/heap.dat" -entities "$ENTITIES"
echo "paged server on $addr (admin $admin_addr, $ENTITIES entities, pool $POOL pages)"

"$OUT/prload" -addr "$addr" -workload counter -entities "$ENTITIES" \
    -clients "$CLIENTS" -txns "$TXNS" -proto 3 -conns 4 -seed 23 \
    -admin "$admin_addr" -json "$OUT/report_paged.json" \
    >"$OUT/load_paged.log" 2>&1 &
load_pid=$!

# Sample the Go heap while the load runs: the plateau is the claim.
samples=""
if [ "$HAVE_CURL" = 1 ]; then
    while kill -0 "$load_pid" 2>/dev/null; do
        h=$(heap_sample || true)
        [ -n "$h" ] && samples="$samples$h,"
        sleep 0.5
    done
fi
wait "$load_pid" || { cat "$OUT/load_paged.log"; exit 1; }
[ "$HAVE_CURL" = 1 ] && h=$(heap_sample || true) && [ -n "$h" ] && samples="$samples$h,"
samples=${samples%,}

COMMITTED=$(json_num "$OUT/report_paged.json" committed)
"$OUT/prload" -addr "$addr" -workload counter -entities "$ENTITIES" \
    -verify-sum-min "$COMMITTED" -proto 2
kill "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true

tput_ooc=$(json_num "$OUT/report_paged.json" throughputTxnPerSec)
p99_ooc=$(json_num "$OUT/report_paged.json" latencyP99Ms)
misses=$(sed -n 's/.* misses=\([0-9]*\).*/\1/p' "$OUT/load_paged.log" | head -1)
evictions=$(sed -n 's/.* evictions=\([0-9]*\).*/\1/p' "$OUT/load_paged.log" | head -1)
heap_max=0
for h in $(echo "$samples" | tr ',' ' '); do
    [ "$h" -gt "$heap_max" ] && heap_max=$h
done
echo "out-of-core: throughput=${tput_ooc} txn/s p99=${p99_ooc}ms misses=$misses evictions=$evictions heap_max=${heap_max}B"

# ---- Cell 2: RAM-resident throughput parity (E22 hotspot config) ----
parity() {
    # parity <label> [extra server flags...]; echoes throughput.
    plabel=$1
    shift
    start_server "$OUT/server_$plabel.log" -entities 64 -stripes 8 "$@"
    "$OUT/prload" -addr "$addr" -workload hotspot \
        -db 64 -hot 8 -hotprob 0.6 -locks 4 -pad 2 \
        -clients "$CLIENTS" -txns "$PAR_TXNS" -proto 3 -conns 4 -seed 22 \
        -json "$OUT/report_$plabel.json" \
        >"$OUT/load_$plabel.log" 2>&1
    kill "$spid" 2>/dev/null || true
    wait "$spid" 2>/dev/null || true
    json_num "$OUT/report_$plabel.json" throughputTxnPerSec
}

tput_mem=$(parity mem)
tput_resident=$(parity resident -store paged -pool-pages 64 -page-size 4096 -heap "$OUT/heap2.dat")
ratio=$(awk "BEGIN{printf \"%.3f\", $tput_resident/$tput_mem}")
echo "parity: mem=${tput_mem} txn/s paged-resident=${tput_resident} txn/s ratio=$ratio"
awk "BEGIN{exit !($ratio >= 0.90)}" || \
    echo "WARNING: resident paged throughput below 90% of mem (ratio $ratio)"

cat >"$OUT/BENCH_E23.json" <<EOF
{
 "id": "E23",
 "title": "Beyond-RAM entity storage: bounded memory out-of-core, throughput parity resident",
 "method": {
  "out_of_core": "prserver -store paged -entities $ENTITIES -pool-pages $POOL -page-size 4096 (entity set ~$((ENTITIES / 504 / POOL))x pool); counter workload clients=$CLIENTS txns/client=$TXNS proto=3 seed=23; exact -verify-sum-min after; GOMEMLIMIT=256MiB; Go heap sampled from pr_runtime_heap_alloc_bytes every 0.5s",
  "parity": "E22 hotspot config (db=64 hot=8 hotprob=0.6 locks=4 pad=2, clients=$CLIENTS txns/client=$PAR_TXNS proto=3 seed=22, -stripes 8): -store mem vs -store paged with pool (64 pages) >> working set (1 page)",
  "machine_cpus": $NUMCPU,
  "note": "The bounded-memory claim is the heap plateau: heap_alloc_samples must level out near the pool+runtime baseline instead of growing with the entity set ($ENTITIES entities would be ~800KB resident as slices but the paged heap file keeps them on disk). Miss latency distribution is in the adminMetrics of report_paged.json (pr_store_read_miss_seconds)."
 },
 "out_of_core": {
  "entities": $ENTITIES,
  "pool_pages": $POOL,
  "throughput_txn_s": $tput_ooc,
  "p99_ms": $p99_ooc,
  "committed": $COMMITTED,
  "store_misses": ${misses:-0},
  "store_evictions": ${evictions:-0},
  "heap_alloc_max_bytes": $heap_max,
  "heap_alloc_samples": [$samples]
 },
 "parity": {
  "mem_txn_s": $tput_mem,
  "paged_resident_txn_s": $tput_resident,
  "ratio": $ratio
 }
}
EOF
echo "wrote $OUT/BENCH_E23.json"
