#!/usr/bin/env sh
# Crash-recovery smoke test: the durability acceptance gate. Start
# prserver with a WAL, drive acknowledged counter increments at it,
# kill -9 the server mid-load, restart it over the same log directory,
# and prove arithmetically that every acknowledged commit survived:
# each counter commit adds exactly one, so sum(e0..eK-1) after recovery
# must be at least the loader's acknowledged-commit count (retries and
# unacknowledged in-flight commits can only push the sum higher).
# Run from the repository root:
#
#   ./scripts/smoke_recovery.sh
set -eu

workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/prserver" ./cmd/prserver
go build -o "$workdir/prload" ./cmd/prload

WAL="$workdir/wal"

start_server() {
    log=$1
    shift
    "$workdir/prserver" -addr 127.0.0.1:0 -entities 16 -accounts 0 \
        -shards 2 -burst 8 \
        -wal "$WAL" -fsync group -group-window 2ms -group-max 64 \
        "$@" \
        >"$log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$log")
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$log"; exit 1; }
}

# Phase 1: load, then die without warning. -attempts 1 and -bail keep
# the acknowledged-commit count exact: no client ever retries a
# transaction whose first attempt might already have committed.
start_server "$workdir/server1.log"
echo "server 1 on $addr (wal=$WAL)"

"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -clients 8 -txns 4000 -proto 2 -attempts 1 -bail -seed 7 \
    >"$workdir/load.log" 2>&1 &
load_pid=$!

sleep 2
kill -9 "$server_pid"
wait "$load_pid" 2>/dev/null || true  # the loader dies with the server
wait "$server_pid" 2>/dev/null || true
server_pid=""

ACKED=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load.log")
[ -n "$ACKED" ] || { echo "loader report missing"; cat "$workdir/load.log"; exit 1; }
if [ "$ACKED" -lt 100 ]; then
    echo "only $ACKED acknowledged commits before the crash; not a meaningful test"
    cat "$workdir/load.log"
    exit 1
fi
echo "killed server 1 with $ACKED acknowledged commits"

# Phase 2: restart over the same log directory. Recovery must replay
# the log (truncating any torn tail) and the recovered counters must
# account for every acknowledged commit.
start_server "$workdir/server2.log"
echo "server 2 on $addr"

grep '^prserver: wal: recovered' "$workdir/server2.log" || {
    echo "server 2 did not report recovery"; cat "$workdir/server2.log"; exit 1; }
if grep -q 'WARNING: mid-log corruption' "$workdir/server2.log"; then
    echo "recovery reported corruption beyond a torn tail"
    cat "$workdir/server2.log"
    exit 1
fi

"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -verify-sum-min "$ACKED" -proto 2

# Phase 3: clean shutdown and a final recovery over the clean log —
# no torn tail this time, same verified sum.
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q 'store consistent' "$workdir/server2.log" || {
    echo "server 2 shutdown unclean"; cat "$workdir/server2.log"; exit 1; }

start_server "$workdir/server3.log"
echo "server 3 on $addr"
"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -verify-sum-min "$ACKED" -proto 2
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Phase 4: checkpointed crash rounds. The server now takes fuzzy
# checkpoints every 120ms with -checkpoint-phase-delay widening every
# crash window (post-rotation, between the checkpoint temp file's
# fsync and its rename, post-publication, and between the retention
# pass's removals), so repeated kill -9s land inside in-progress
# checkpoints and mid-truncation. The acknowledged-commit bound must
# keep holding across every round: recovery = checkpoint base + log
# tail, and neither a torn checkpoint nor a half-finished compaction
# may lose an acknowledged increment.
TOTAL=$ACKED
round=0
while [ "$round" -lt 3 ]; do
    round=$((round + 1))
    start_server "$workdir/server_ckpt$round.log" \
        -checkpoint-interval 120ms -retain 2 -checkpoint-phase-delay 30ms
    echo "checkpoint round $round on $addr"

    "$workdir/prload" -addr "$addr" -workload counter -counters 8 \
        -clients 8 -txns 4000 -proto 2 -attempts 1 -bail -seed $((20 + round)) \
        >"$workdir/load_ckpt$round.log" 2>&1 &
    load_pid=$!
    sleep 2
    kill -9 "$server_pid"
    wait "$load_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""

    acked_round=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load_ckpt$round.log")
    [ -n "$acked_round" ] || { echo "round $round loader report missing"; cat "$workdir/load_ckpt$round.log"; exit 1; }
    TOTAL=$((TOTAL + acked_round))
    echo "killed checkpoint round $round with $acked_round more acknowledged commits (total $TOTAL)"

    grep -q '^prserver: checkpoint: wrote' "$workdir/server_ckpt$round.log" || {
        echo "round $round never completed a checkpoint (interval too long for the load window?)"
        cat "$workdir/server_ckpt$round.log"; exit 1; }

    # Restart plainly (no checkpointer) and verify the durable sum.
    start_server "$workdir/server_verify$round.log"
    if grep -q 'WARNING: mid-log corruption\|WARNING: skipped invalid checkpoint' "$workdir/server_verify$round.log"; then
        echo "round $round recovery reported corruption"
        cat "$workdir/server_verify$round.log"; exit 1
    fi
    "$workdir/prload" -addr "$addr" -workload counter -counters 8 \
        -verify-sum-min "$TOTAL" -proto 2
    kill "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
done

# The last verify server must have recovered from a checkpoint base
# (bounded recovery), and compaction must have kept the directory
# bounded: at most -retain + 1 checkpoints (one may be mid-publication
# at the kill) and a small number of log segments.
grep -q 'wal: checkpoint base' "$workdir/server_verify3.log" || {
    echo "final recovery did not use a checkpoint base"
    cat "$workdir/server_verify3.log"; exit 1; }
ckpts=$(ls "$WAL" | grep -c '^ckpt-.*\.ckpt$' || true)
files=$(ls "$WAL" | wc -l)
if [ "$ckpts" -gt 3 ] || [ "$files" -gt 48 ]; then
    echo "log directory unbounded: $ckpts checkpoints, $files files"
    ls -l "$WAL"; exit 1
fi
echo "checkpoint rounds passed: dir holds $ckpts checkpoint(s), $files file(s)"

# Phase 5: one checkpointed crash round against -store paged. The heap
# file is a spill area, so a kill -9 landing mid-flush (the phase delay
# widens the checkpoint's flush-all window) must not matter: recovery
# is checkpoint base + WAL tail into a fresh paged store, same
# arithmetic bound. The entity set (64 over 15-slot pages) is ~16x the
# 2-frame pool, so the round evicts and faults throughout.
start_server "$workdir/server_paged.log" \
    -store paged -pool-pages 2 -page-size 128 -entities 64 \
    -checkpoint-interval 120ms -retain 2 -checkpoint-phase-delay 30ms
echo "paged round on $addr"
grep -q 'store: paged backend' "$workdir/server_paged.log" || {
    echo "server did not come up on the paged backend"; cat "$workdir/server_paged.log"; exit 1; }

"$workdir/prload" -addr "$addr" -workload counter -entities 64 \
    -clients 8 -txns 4000 -proto 2 -attempts 1 -bail -seed 31 \
    >"$workdir/load_paged.log" 2>&1 &
load_pid=$!
sleep 2
kill -9 "$server_pid"
wait "$load_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

acked_paged=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load_paged.log")
[ -n "$acked_paged" ] || { echo "paged loader report missing"; cat "$workdir/load_paged.log"; exit 1; }
TOTAL=$((TOTAL + acked_paged))
echo "killed paged round with $acked_paged more acknowledged commits (total $TOTAL)"

start_server "$workdir/server_paged_verify.log" \
    -store paged -pool-pages 2 -page-size 128 -entities 64
if grep -q 'WARNING: mid-log corruption\|WARNING: skipped invalid checkpoint' "$workdir/server_paged_verify.log"; then
    echo "paged recovery reported corruption"
    cat "$workdir/server_paged_verify.log"; exit 1
fi
"$workdir/prload" -addr "$addr" -workload counter -entities 64 \
    -verify-sum-min "$TOTAL" -proto 2
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q 'store consistent' "$workdir/server_paged_verify.log" || {
    echo "paged verify server shutdown unclean"; cat "$workdir/server_paged_verify.log"; exit 1; }

echo "recovery smoke test passed: $TOTAL acknowledged commits survived kill -9 (incl. 3 checkpointed rounds + 1 paged round)"
