#!/usr/bin/env sh
# Crash-recovery smoke test: the durability acceptance gate. Start
# prserver with a WAL, drive acknowledged counter increments at it,
# kill -9 the server mid-load, restart it over the same log directory,
# and prove arithmetically that every acknowledged commit survived:
# each counter commit adds exactly one, so sum(e0..eK-1) after recovery
# must be at least the loader's acknowledged-commit count (retries and
# unacknowledged in-flight commits can only push the sum higher).
# Run from the repository root:
#
#   ./scripts/smoke_recovery.sh
set -eu

workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/prserver" ./cmd/prserver
go build -o "$workdir/prload" ./cmd/prload

WAL="$workdir/wal"

start_server() {
    log=$1
    "$workdir/prserver" -addr 127.0.0.1:0 -entities 16 -accounts 0 \
        -shards 2 -burst 8 \
        -wal "$WAL" -fsync group -group-window 2ms -group-max 64 \
        >"$log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$log")
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$log"; exit 1; }
}

# Phase 1: load, then die without warning. -attempts 1 and -bail keep
# the acknowledged-commit count exact: no client ever retries a
# transaction whose first attempt might already have committed.
start_server "$workdir/server1.log"
echo "server 1 on $addr (wal=$WAL)"

"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -clients 8 -txns 4000 -proto 2 -attempts 1 -bail -seed 7 \
    >"$workdir/load.log" 2>&1 &
load_pid=$!

sleep 2
kill -9 "$server_pid"
wait "$load_pid" 2>/dev/null || true  # the loader dies with the server
wait "$server_pid" 2>/dev/null || true
server_pid=""

ACKED=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load.log")
[ -n "$ACKED" ] || { echo "loader report missing"; cat "$workdir/load.log"; exit 1; }
if [ "$ACKED" -lt 100 ]; then
    echo "only $ACKED acknowledged commits before the crash; not a meaningful test"
    cat "$workdir/load.log"
    exit 1
fi
echo "killed server 1 with $ACKED acknowledged commits"

# Phase 2: restart over the same log directory. Recovery must replay
# the log (truncating any torn tail) and the recovered counters must
# account for every acknowledged commit.
start_server "$workdir/server2.log"
echo "server 2 on $addr"

grep '^prserver: wal: recovered' "$workdir/server2.log" || {
    echo "server 2 did not report recovery"; cat "$workdir/server2.log"; exit 1; }
if grep -q 'WARNING: mid-log corruption' "$workdir/server2.log"; then
    echo "recovery reported corruption beyond a torn tail"
    cat "$workdir/server2.log"
    exit 1
fi

"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -verify-sum-min "$ACKED" -proto 2

# Phase 3: clean shutdown and a final recovery over the clean log —
# no torn tail this time, same verified sum.
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q 'store consistent' "$workdir/server2.log" || {
    echo "server 2 shutdown unclean"; cat "$workdir/server2.log"; exit 1; }

start_server "$workdir/server3.log"
echo "server 3 on $addr"
"$workdir/prload" -addr "$addr" -workload counter -counters 8 \
    -verify-sum-min "$ACKED" -proto 2
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "recovery smoke test passed: $ACKED acknowledged commits survived kill -9"
