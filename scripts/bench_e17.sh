#!/usr/bin/env sh
# E17 throughput sweep: drive the current tree's network server with
# prload over the hotspot and banking workloads at shards 1 and 4, and
# print one JSON result per configuration. Run from the repository
# root:
#
#   ./scripts/bench_e17.sh [outdir]
#
# To compare against another revision, check it out (or use a git
# worktree), run this script there, and diff the throughputTxnPerSec
# fields; the committed BENCH_E17.json records one such comparison
# against the PR-3 tree (see EXPERIMENTS.md, E17). Numbers are
# machine-dependent — only before/after ratios measured back-to-back
# on one machine are meaningful.
set -eu

OUT=${1:-/tmp/bench_e17}
PORT=${PORT:-7615}
TRIALS=${TRIALS:-3}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

run_one() {
    wl=$1; sh=$2; trial=$3
    port=$((PORT + trial))
    "$OUT/prserver" -addr 127.0.0.1:$port -strategy mcs -entities 64 \
        -accounts 16 -shards "$sh" >/dev/null 2>&1 &
    spid=$!
    sleep 0.7
    f="$OUT/${wl}_s${sh}_r${trial}.json"
    if [ "$wl" = hotspot ]; then
        "$OUT/prload" -addr 127.0.0.1:$port -clients 8 -txns 600 \
            -workload hotspot -db 64 -hot 8 -hotprob 0.8 -locks 4 \
            -seed 1 -json "$f" >/dev/null
    else
        "$OUT/prload" -addr 127.0.0.1:$port -clients 8 -txns 600 \
            -workload banking -accounts 16 -seed 1 -json "$f" >/dev/null
    fi
    kill $spid 2>/dev/null || true
    wait $spid 2>/dev/null || true
    echo "$wl shards=$sh trial=$trial: $(grep -o '"throughputTxnPerSec": [0-9.]*' "$f")"
}

for wl in hotspot banking; do
    for sh in 1 4; do
        t=1
        while [ "$t" -le "$TRIALS" ]; do
            run_one "$wl" "$sh" "$t"
            t=$((t + 1))
        done
    done
done

echo "results in $OUT"
