#!/usr/bin/env sh
# E20 connection-efficiency benchmark: the multiplexing claim. At equal
# total concurrency (CONC in-flight transactions), compare
#
#   baseline  proto 2, one stream per connection: CONC sockets
#   mux       proto 3, CONC streams multiplexed over CONNS sockets
#
# on txn/s-per-socket (throughputTxnPerSec / openSockets), the ROADMAP
# metric for "thousands of transactions per socket, not per
# connection". With CONC=256 and CONNS=4 the socket count drops 64x, so
# as long as multiplexed throughput holds within ~3x of the baseline
# the per-socket ratio clears the 20x acceptance bar. Both servers run
# adaptive burst (-burst -1). Trials are interleaved so drift hits both
# configurations alike. Run from the repository root:
#
#   ./scripts/bench_e20.sh [outdir]
#
# The committed BENCH_E20.json records one such run (see EXPERIMENTS.md,
# E20): the two prload reports plus the computed per-socket ratio.
# Numbers are machine-dependent — only ratios measured back-to-back on
# one machine are meaningful.
set -eu

OUT=${1:-/tmp/bench_e20}
TRIALS=${TRIALS:-3}
CONC=${CONC:-256}
CONNS=${CONNS:-4}
TXNS=${TXNS:-40}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

run_one() {
    # run_one <label> <trial> <loader-args...>
    label=$1; trial=$2; shift 2
    "$OUT/prserver" -addr 127.0.0.1:0 -strategy mcs -entities 64 \
        -accounts 0 -burst -1 \
        >"$OUT/server_${label}_r${trial}.log" 2>&1 &
    spid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' \
            "$OUT/server_${label}_r${trial}.log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    f="$OUT/${label}_r${trial}.json"
    "$OUT/prload" -addr "$addr" -txns "$TXNS" \
        -workload hotspot -db 64 -hot 8 -hotprob 0.8 -locks 4 \
        -seed 1 -json "$f" "$@" >/dev/null
    kill $spid 2>/dev/null || true
    wait $spid 2>/dev/null || true
    echo "$label trial=$trial:" \
        "$(grep -o '"throughputTxnPerSec": [0-9.]*' "$f")" \
        "$(grep -o '"txnsPerSocket": [0-9.]*' "$f")"
}

t=1
while [ "$t" -le "$TRIALS" ]; do
    run_one baseline "$t" -proto 2 -clients "$CONC"
    run_one mux "$t" -proto 3 -conns "$CONNS" -streams "$CONC" -clients "$CONC"
    t=$((t + 1))
done

# Combine the last trial into one report with the headline ratio.
base_ps=$(grep -o '"txnsPerSocket": [0-9.]*' "$OUT/baseline_r${TRIALS}.json" | grep -o '[0-9.]*')
mux_ps=$(grep -o '"txnsPerSocket": [0-9.]*' "$OUT/mux_r${TRIALS}.json" | grep -o '[0-9.]*')
ratio=$(awk "BEGIN { printf \"%.1f\", $mux_ps / $base_ps }")
{
    printf '{\n'
    printf '  "concurrency": %s,\n' "$CONC"
    printf '  "baselinePerSocket": %s,\n' "$base_ps"
    printf '  "muxPerSocket": %s,\n' "$mux_ps"
    printf '  "perSocketRatio": %s,\n' "$ratio"
    printf '  "baseline": '
    cat "$OUT/baseline_r${TRIALS}.json"
    printf ',\n  "mux": '
    cat "$OUT/mux_r${TRIALS}.json"
    printf '}\n'
} >"$OUT/BENCH_E20.json"
echo "per-socket ratio: ${ratio}x (baseline $base_ps, mux $mux_ps txn/s-per-socket)"
echo "results in $OUT"
