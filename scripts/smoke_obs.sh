#!/usr/bin/env sh
# Observability smoke test: build prserver, start it with an admin
# endpoint on an ephemeral port, and assert the admin surface actually
# serves what the docs promise — key Prometheus series on /metrics, a
# DOT graph on /debug/waitfor, a transaction table on /debug/txns, and
# the pprof index. Run from the repository root:
#
#   ./scripts/smoke_obs.sh
set -eu

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/prserver" ./cmd/prserver

"$workdir/prserver" -addr 127.0.0.1:0 -admin 127.0.0.1:0 -trace 16 \
    >"$workdir/server.log" 2>&1 &
server_pid=$!

# The server logs "admin on http://HOST:PORT (...)" once the admin
# listener is up; poll the log for it.
admin=""
for _ in $(seq 1 50); do
    admin=$(sed -n 's/^prserver: admin on http:\/\/\([^ ]*\) .*/\1/p' "$workdir/server.log")
    [ -n "$admin" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$admin" ] || { echo "admin endpoint never came up"; cat "$workdir/server.log"; exit 1; }

fetch() {
    curl -fsS --max-time 10 "http://$admin$1"
}

require() {
    # require <path> <needle>...: fetch path, assert every needle appears.
    path=$1; shift
    body=$(fetch "$path")
    for needle in "$@"; do
        case $body in
        *"$needle"*) ;;
        *)
            echo "FAIL: $path missing \"$needle\":"
            echo "$body" | head -30
            exit 1
            ;;
        esac
    done
    echo "ok: $path"
}

require /metrics \
    "# TYPE pr_grants_total counter" \
    "# TYPE pr_rollback_depth histogram" \
    "pr_wait_duration_seconds_count" \
    "pr_txns_active" \
    "pr_server_sessions_total"
require "/metrics?format=json" '"pr_commits_total"'
require "/debug/waitfor?format=dot" "digraph waitfor"
require /debug/waitfor '"merged"'
require /debug/txns '"txns"'
require "/debug/trace?format=text" "tracer enabled=true"
require /debug/pprof/ profiles

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "obs smoke test passed"
