#!/usr/bin/env sh
# Benchmark smoke test: run every micro-benchmark exactly once under
# the race detector, plus the zero-allocation regression tests that pin
# the hot path's alloc-freedom (including the StepBurst path, covered
# by TestStepBurstZeroAlloc and BenchmarkStepBurst in internal/core).
# This does not measure anything — it
# proves the benchmark code itself still builds and runs (benchmarks
# are skipped by plain `go test`, so they otherwise rot). Run from the
# repository root:
#
#   ./scripts/bench_smoke.sh
set -eux

go test -race -count=1 -run 'ZeroAlloc' -bench . -benchtime 1x \
    ./internal/lock ./internal/waitfor ./internal/core ./internal/value

# The entity-store benchmarks (uniform-store construction, paged-pool
# paths) live apart from the zero-alloc pins: store construction
# allocates by design.
go test -race -count=1 -run 'NONE' -bench . -benchtime 1x ./internal/entity
