#!/usr/bin/env sh
# E18 end-to-end batching sweep: drive the network server with prload
# over the hotspot workload for every combination of
#
#   burst  in {1, 4, 16, 64}   (prserver -burst: steps per mutex grab)
#   shards in {1, 4}           (prserver -shards)
#   proto  in {1, 2}           (prload -proto: per-op frames vs one
#                               BeginProgram frame per transaction)
#
# and print one JSON result per configuration. burst=1 proto=1 is the
# baseline (the pre-batching request path, byte-identical per the
# regression tests). Trials are interleaved — each round visits every
# configuration once — so thermal/load drift hits all configurations
# alike. Run from the repository root:
#
#   ./scripts/bench_e18.sh [outdir]
#
# The committed BENCH_E18.json records one such run (see EXPERIMENTS.md,
# E18). Numbers are machine-dependent — only ratios measured
# back-to-back on one machine are meaningful.
set -eu

OUT=${1:-/tmp/bench_e18}
PORT=${PORT:-7715}
TRIALS=${TRIALS:-3}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

run_one() {
    burst=$1; sh=$2; proto=$3; trial=$4
    port=$((PORT + trial))
    "$OUT/prserver" -addr 127.0.0.1:$port -strategy mcs -entities 64 \
        -accounts 16 -shards "$sh" -burst "$burst" >/dev/null 2>&1 &
    spid=$!
    sleep 0.7
    f="$OUT/b${burst}_s${sh}_p${proto}_r${trial}.json"
    "$OUT/prload" -addr 127.0.0.1:$port -clients 8 -txns 600 \
        -workload hotspot -db 64 -hot 8 -hotprob 0.8 -locks 4 \
        -seed 1 -proto "$proto" -json "$f" >/dev/null
    kill $spid 2>/dev/null || true
    wait $spid 2>/dev/null || true
    echo "burst=$burst shards=$sh proto=$proto trial=$trial:" \
        "$(grep -o '"throughputTxnPerSec": [0-9.]*' "$f")" \
        "$(grep -o '"wireFramesPerTxn": [0-9.]*' "$f")"
}

t=1
while [ "$t" -le "$TRIALS" ]; do
    for sh in 1 4; do
        for burst in 1 4 16 64; do
            for proto in 1 2; do
                run_one "$burst" "$sh" "$proto" "$t"
            done
        done
    done
    t=$((t + 1))
done

echo "results in $OUT"
