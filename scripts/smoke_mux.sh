#!/usr/bin/env sh
# Stream-multiplexing smoke test: the v3 acceptance gate. Start a
# race-enabled prserver, open 10,000 concurrent streams over just 4
# shared sockets (prload -proto 3), and prove arithmetically that no
# acknowledged commit was lost: each counter commit adds exactly one,
# so after the load sum(e0..eK-1) must be at least the acknowledged
# count. The loader itself fails on any stream that never got a
# terminal reply, so a hung stream — the failure mode multiplexing
# risks — fails the gate, and the race detector watches the server's
# reader/worker-pool/writer handoffs under peak stream concurrency.
#
# The worker cap stays under ThreadSanitizer's ~8k-goroutine limit
# (4 conns x 1500 workers); excess streams queue for a worker, which
# the terminal-reply guarantee must tolerate. Run from the repository
# root:
#
#   ./scripts/smoke_mux.sh
set -eu

CONNS=${CONNS:-4}
STREAMS=${STREAMS:-10000}
COUNTERS=${COUNTERS:-256}

workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -race -o "$workdir/prserver" ./cmd/prserver
go build -o "$workdir/prload" ./cmd/prload

"$workdir/prserver" -addr 127.0.0.1:0 -entities "$COUNTERS" -accounts 0 \
    -burst -1 -max-streams 4096 -stream-workers 1500 \
    >"$workdir/server.log" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$workdir/server.log")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never came up"; cat "$workdir/server.log"; exit 1; }
echo "race-enabled server on $addr"

# One transaction per stream: STREAMS concurrent streams, all in
# flight at once, multiplexed over CONNS sockets.
"$workdir/prload" -addr "$addr" -workload counter -counters "$COUNTERS" \
    -proto 3 -conns "$CONNS" -streams "$STREAMS" -txns 1 -seed 7 \
    | tee "$workdir/load.log"

ACKED=$(sed -n 's/^committed=\([0-9]*\) .*/\1/p' "$workdir/load.log")
[ "$ACKED" = "$STREAMS" ] || {
    echo "acknowledged $ACKED of $STREAMS streams"; exit 1; }
SOCKETS=$(sed -n 's/^sockets=\([0-9]*\) .*/\1/p' "$workdir/load.log")
[ "$SOCKETS" = "$CONNS" ] || {
    echo "load rode $SOCKETS sockets, want $CONNS"; exit 1; }

# Every acknowledged commit must be in the store.
"$workdir/prload" -addr "$addr" -workload counter -counters "$COUNTERS" \
    -verify-sum-min "$ACKED" -proto 2

# Clean shutdown; any data race would have aborted the server by now.
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q 'store consistent' "$workdir/server.log" || {
    echo "server shutdown unclean"; cat "$workdir/server.log"; exit 1; }
if grep -q 'DATA RACE' "$workdir/server.log"; then
    echo "data race detected"; cat "$workdir/server.log"; exit 1
fi

echo "mux smoke test passed: $ACKED streams over $SOCKETS sockets, zero lost acks"
