#!/usr/bin/env sh
# E21 bounded-recovery sweep: startup recovery time as a function of
# log length, with and without checkpoints. For each log size the
# fill phase drives acknowledged counter commits at a WAL-backed
# server and kills it with -9; the measure phase restarts over the
# same directory and reads the server's own recovery report:
#
#   prserver: wal: recovered N records ...
#   prserver: wal: checkpoint base ckpt-...; replayed tail of T record(s)
#   prserver: wal: recovery took D
#
# Without checkpoints the replayed record count — and so recovery
# time — grows linearly with history. With a checkpointer
# (-checkpoint-interval 150ms) recovery loads the newest snapshot and
# replays only the tail behind its frontier, so both the tail length
# and the recovery time stay roughly flat as the log grows; compaction
# additionally bounds the bytes on disk. Run from the repository root:
#
#   ./scripts/bench_e21.sh [outdir]
#
# The committed BENCH_E21.json records one such run (see
# EXPERIMENTS.md, E21). Absolute times are machine-dependent; the
# shape (linear vs flat) is the claim.
set -eu

OUT=${1:-/tmp/bench_e21}
SIZES=${SIZES:-"2000 8000 32000"}
CLIENTS=${CLIENTS:-16}
mkdir -p "$OUT"

go build -o "$OUT/prserver" ./cmd/prserver
go build -o "$OUT/prload" ./cmd/prload

# dur_ms <go-duration>: convert 250µs / 1.5ms / 1.2s to milliseconds.
dur_ms() {
    awk -v d="$1" 'BEGIN{
        if (d ~ /(µs|us)$/)      { sub(/(µs|us)$/, "", d); printf "%.3f\n", d/1000 }
        else if (d ~ /ms$/)      { sub(/ms$/, "", d); printf "%.3f\n", d+0 }
        else if (d ~ /[0-9]s$/)  { sub(/s$/, "", d); printf "%.3f\n", d*1000 }
        else                     { printf "-1\n" }
    }'
}

start_server() {
    # start_server <log> <server-args...>; sets $spid and $addr.
    slog=$1
    shift
    "$OUT/prserver" -addr 127.0.0.1:0 -entities 16 -accounts 0 \
        -shards 2 -burst 8 -fsync group -group-window 1ms "$@" \
        >"$slog" 2>&1 &
    spid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^prserver: listening on \([^ ]*\) .*/\1/p' "$slog")
        [ -n "$addr" ] && break
        kill -0 "$spid" 2>/dev/null || { cat "$slog"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never came up"; cat "$slog"; exit 1; }
}

run_one() {
    # run_one <label> <commits> <checkpoint-args...>
    label=$1; commits=$2; shift 2
    wal="$OUT/wal_$label"
    rm -rf "$wal"

    # Fill: acknowledged commits, then kill -9 (a crash, not a clean
    # close, so the measured recovery includes torn-tail handling).
    start_server "$OUT/fill_$label.log" -wal "$wal" "$@"
    "$OUT/prload" -addr "$addr" -workload counter -counters 8 \
        -clients "$CLIENTS" -txns $((commits / CLIENTS)) -proto 2 -seed 21 \
        >"$OUT/load_$label.log" 2>&1
    kill -9 "$spid"
    wait "$spid" 2>/dev/null || true

    # Measure: restart plainly and read the recovery report.
    start_server "$OUT/measure_$label.log" -wal "$wal"
    kill "$spid" 2>/dev/null || true
    wait "$spid" 2>/dev/null || true

    mlog="$OUT/measure_$label.log"
    records=$(sed -n 's/^prserver: wal: recovered \([0-9]*\) records.*/\1/p' "$mlog")
    tail_recs=$(sed -n 's/.*replayed tail of \([0-9]*\) record(s).*/\1/p' "$mlog")
    [ -n "$tail_recs" ] || tail_recs=$records
    dur=$(sed -n 's/^prserver: wal: recovery took \(.*\)$/\1/p' "$mlog")
    ms=$(dur_ms "$dur")
    bytes=$(du -sb "$wal" | cut -f1)
    echo "$label: commits=$commits records=$records tail=$tail_recs recovery=${dur} (${ms}ms) walbytes=$bytes"
    rows="$rows{\"label\":\"$label\",\"commits\":$commits,\"records\":$records,\"tail_records\":$tail_recs,\"recovery_ms\":$ms,\"wal_bytes\":$bytes},"
}

rows=""
for n in $SIZES; do
    run_one "plain_$n" "$n"
    run_one "ckpt_$n" "$n" -checkpoint-interval 150ms -retain 2
done

rows=${rows%,}
cat >"$OUT/BENCH_E21.json" <<EOF
{
 "id": "E21",
 "title": "Bounded recovery: restart time vs log length, with and without checkpoints",
 "method": {
  "workload": "counter counters=8 clients=$CLIENTS seed=21",
  "server": "prserver -entities 16 -accounts 0 -shards 2 -burst 8 -fsync group -group-window 1ms",
  "fill": "acknowledged commits per size in {$SIZES}, then kill -9 (crash recovery, torn tail included)",
  "checkpoint": "-checkpoint-interval 150ms -retain 2 on the ckpt_* rows; plain_* rows have no checkpointer",
  "note": "recovery_ms is the server's own 'wal: recovery took' report on restart (checkpoint load + log scan + replay). tail_records is what was actually replayed past the checkpoint frontier; for plain rows it equals the full entity-record count. wal_bytes is the on-disk directory size after the crash — compaction bounds it on ckpt rows."
 },
 "rows": [$rows]
}
EOF
echo "wrote $OUT/BENCH_E21.json"
