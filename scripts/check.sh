#!/usr/bin/env sh
# Full verification gate: build everything, vet, then run every test
# with the race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# CI and pre-merge checks should treat any non-zero exit as a failure.
set -eux

go build ./...
go vet ./...
go test -race ./...
