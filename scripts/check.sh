#!/usr/bin/env sh
# Full verification gate: build everything, vet, then run every test
# with the race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# CI and pre-merge checks should treat any non-zero exit as a failure.
set -eux

go build ./...
go vet ./...
go test -race ./...

# The sharded engine's correctness surface, run explicitly so a filtered
# or cached run above can never silently skip it: shard unit tests, the
# multi-shard serializability property sweep, and the shards=1
# byte-identity regression.
go test -race -count=1 ./internal/shard/
go test -race -count=1 -run 'TestShardPropertySerializable|TestSingleShardIsUnshardedRegression' ./internal/sim/

# Intra-shard striping's correctness surface: the striped lock-table
# unit and concurrency tests, the stripes=1 / stripes>1 byte-identity
# regressions under the deterministic drivers, and the concurrent
# serializability sweep over stripes x burst (GOMAXPROCS=4 so the fast
# paths genuinely run in parallel under the race detector).
go test -race -count=1 -run 'TestFast|TestStriped|TestStripe|TestMigrate|TestSharedOwned' ./internal/lock/
go test -race -count=1 -run 'TestStripedSequentialRegression|TestStripedShardedSequentialRegression' ./internal/sim/
GOMAXPROCS=4 go test -race -count=1 -run 'TestConcurrentStriped' ./internal/runtime/

# Burst stepping's correctness surface, likewise explicit: the burst=1
# byte-identity regression, the serializability property sweep at every
# burst level (including adaptive, burst=-1), and the mixed-protocol
# (v1 + v2 + v3 frames) server tests.
go test -race -count=1 -run 'TestBurstOneIsStepRegression|TestBurstPropertySerializable' ./internal/sim/
go test -race -count=1 -run 'TestMixedProtocolClients|TestMixedProtocolAllVersions' ./internal/server/

# Stream multiplexing's correctness surface: the v3 demux/drain unit
# tests on both ends of the wire, then 10k concurrent streams over 4
# sockets against a race-enabled server with an arithmetic
# zero-lost-acks check.
go test -race -count=1 -run 'TestMux' ./internal/server/ ./internal/client/
./scripts/smoke_mux.sh

# Durability's correctness surface, likewise explicit: the wal framing
# and torn-tail offsets, the group-commit/recovery unit tests, and the
# concurrent-committer durability tests (acks only after fsync).
go test -race -count=1 ./internal/wal/ ./internal/durable/

# Checkpointing's correctness surface: the checkpoint codec and
# runner unit tests, the concurrent commit-consistency property
# (every fuzzy snapshot taken during a contended banking run must
# satisfy the sum invariant), the rotation/tail-replay/torn-checkpoint
# recovery tests, and the no-checkpoint byte-identity pin.
go test -race -count=1 ./internal/checkpoint/
go test -race -count=1 -run 'TestRotation|TestCheckpoint|TestRecoveryPrefers|TestNoCheckpointByteIdentity' ./internal/durable/

# The paged entity store's correctness surface: the page/pool unit
# tests (incl. the pinned-never-evicted property), the paged-vs-memory
# backend byte-identity regression, the recovery-into-paged-store
# tests, and the concurrent banking run over a pool smaller than the
# working set.
go test -race -count=1 ./internal/page/ ./internal/entity/
go test -race -count=1 -run 'TestPagedStoreSequentialRegression' ./internal/sim/
go test -race -count=1 -run 'TestRecoveryIntoPagedStore' ./internal/durable/
GOMAXPROCS=4 go test -race -count=1 -run 'TestConcurrentPagedBank' ./internal/runtime/

# Out-of-core end-to-end: a paged-backend server over an entity set
# ~17x its buffer pool must evict throughout and still account for
# every acknowledged commit exactly (fast bounded-memory smoke gate).
./scripts/smoke_paged.sh

# Crash recovery end-to-end: kill -9 a WAL-backed prserver mid-load
# (including rounds with an active checkpointer and phase delays so
# kills land inside in-progress checkpoints and mid-compaction, and a
# final round against -store paged), restart it over the same log, and
# verify by arithmetic that every acknowledged commit survived.
./scripts/smoke_recovery.sh

# Micro-benchmarks: one race-enabled iteration each, plus the
# zero-allocation regression tests (including the memory-only commit
# path in internal/core), so benchmark code cannot rot.
./scripts/bench_smoke.sh

# Observability end-to-end: start prserver with -admin and assert the
# metrics, wait-for-graph and transaction-table endpoints really serve
# (needs curl; skipped where unavailable).
if command -v curl >/dev/null 2>&1; then
    ./scripts/smoke_obs.sh
else
    echo "curl not found; skipping obs smoke test"
fi
